//===- tests/KernelsTest.cpp - Reference/handwritten kernel tests ----------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "kernels/CxxKernels.h"
#include "kernels/ReferenceKernels.h"

#include "support/Permutations.h"
#include "support/Rng.h"
#include "verify/Verify.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(ReferenceKernels, NetworkCmovIsCorrectForAllLengths) {
  for (unsigned N = 2; N <= 6; ++N) {
    Machine M(MachineKind::Cmov, N);
    Program P = sortingNetworkCmov(N);
    EXPECT_EQ(P.size(), 4 * networkPairs(N).size());
    EXPECT_TRUE(isCorrectKernel(M, P)) << "n=" << N;
  }
}

TEST(ReferenceKernels, NetworkMinMaxIsCorrectForAllLengths) {
  for (unsigned N = 2; N <= 6; ++N) {
    Machine M(MachineKind::MinMax, N);
    Program P = sortingNetworkMinMax(N);
    EXPECT_EQ(P.size(), 3 * networkPairs(N).size());
    EXPECT_TRUE(isCorrectKernel(M, P)) << "n=" << N;
  }
}

TEST(ReferenceKernels, NetworkSizesMatchPaperSection54) {
  // Section 5.4: "9, 15, 27 for a straight-forward implementation of a
  // minimal-size sorting network for sizes n = 3, 4, 5" (min/max form).
  EXPECT_EQ(sortingNetworkMinMax(3).size(), 9u);
  EXPECT_EQ(sortingNetworkMinMax(4).size(), 15u);
  EXPECT_EQ(sortingNetworkMinMax(5).size(), 27u);
  // Cmov form: 12 / 20 / 36.
  EXPECT_EQ(sortingNetworkCmov(3).size(), 12u);
  EXPECT_EQ(sortingNetworkCmov(4).size(), 20u);
  EXPECT_EQ(sortingNetworkCmov(5).size(), 36u);
}

TEST(ReferenceKernels, PaperSynthCmov3IsCorrectAndShorterThanNetwork) {
  Machine M(MachineKind::Cmov, 3);
  Program P = paperSynthCmov3();
  EXPECT_EQ(P.size(), 11u) << "one instruction shorter than the network";
  EXPECT_TRUE(isCorrectKernel(M, P));
}

TEST(ReferenceKernels, PaperSynthMinMax3IsCorrectAndShorterThanNetwork) {
  Machine M(MachineKind::MinMax, 3);
  Program P = paperSynthMinMax3();
  EXPECT_EQ(P.size(), 8u);
  EXPECT_TRUE(isCorrectKernel(M, P));
}

TEST(ReferenceKernels, PaperSynthCmov3MixMatchesTable) {
  // The section 5.3 standalone table reports 3 cmp / 8 mov / 6 cmov for
  // the enum kernel, counting the 3 loads and 3 stores as movs.
  InstrMix Mix = countMix(paperSynthCmov3());
  EXPECT_EQ(Mix.Cmp, 3u);
  EXPECT_EQ(Mix.Mov + 6, 8u);
  EXPECT_EQ(Mix.CMov, 6u);
}

/// Checks a C++ kernel against std::sort on every permutation of distinct
/// values and on random values with duplicates.
void checkCxxKernel(KernelFn Fn, unsigned N) {
  ASSERT_NE(Fn, nullptr);
  for (const std::vector<int> &Perm : allPermutations(N)) {
    std::vector<int32_t> Data(Perm.begin(), Perm.end());
    Fn(Data.data());
    EXPECT_TRUE(std::is_sorted(Data.begin(), Data.end()));
  }
  Rng R(42);
  for (int Trial = 0; Trial != 500; ++Trial) {
    std::vector<int32_t> Data(N);
    for (int32_t &V : Data)
      V = static_cast<int32_t>(R.range(-10000, 10000));
    std::vector<int32_t> Expected = Data;
    std::sort(Expected.begin(), Expected.end());
    Fn(Data.data());
    EXPECT_EQ(Data, Expected);
  }
}

TEST(CxxKernels, Default3) { checkCxxKernel(defaultSort3, 3); }
TEST(CxxKernels, Default4) { checkCxxKernel(defaultSort4, 4); }
TEST(CxxKernels, Default5) { checkCxxKernel(defaultSort5, 5); }
TEST(CxxKernels, Branchless3) { checkCxxKernel(branchlessSort3, 3); }
TEST(CxxKernels, Branchless4) { checkCxxKernel(branchlessSort4, 4); }
TEST(CxxKernels, Swap3) { checkCxxKernel(swapSort3, 3); }
TEST(CxxKernels, Swap4) { checkCxxKernel(swapSort4, 4); }
TEST(CxxKernels, Swap5) { checkCxxKernel(swapSort5, 5); }
TEST(CxxKernels, Std3) { checkCxxKernel(stdSort3, 3); }
TEST(CxxKernels, Cassioneri3) { checkCxxKernel(cassioneriSort3, 3); }

TEST(CxxKernels, Mimicry3) {
  if (!mimicrySupported())
    GTEST_SKIP() << "host lacks SSE4.1";
  checkCxxKernel(mimicrySort3, 3);
}

TEST(CxxKernels, Mimicry4) {
  if (!mimicrySupported())
    GTEST_SKIP() << "host lacks SSE4.1";
  checkCxxKernel(mimicrySort4, 4);
}

TEST(CxxKernels, LookupFindsRegisteredKernels) {
  EXPECT_EQ(lookupCxxKernel("default", 3), &defaultSort3);
  EXPECT_EQ(lookupCxxKernel("cassioneri", 3), &cassioneriSort3);
  EXPECT_EQ(lookupCxxKernel("cassioneri", 4), nullptr)
      << "the paper notes Neri provides no n=4 kernel";
  EXPECT_EQ(lookupCxxKernel("nonsense", 3), nullptr);
}

} // namespace
