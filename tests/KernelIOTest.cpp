//===- tests/KernelIOTest.cpp - Serialization + driver tests -----------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelIO.h"

#include "kernels/ReferenceKernels.h"
#include "search/Search.h"
#include "verify/Verify.h"

#include <cstdio>
#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(KernelIO, RoundTripCmov) {
  SavedKernel Kernel{MachineKind::Cmov, 3, paperSynthCmov3()};
  std::string Text = serializeKernel(Kernel);
  EXPECT_NE(Text.find("# sks-kernel v1"), std::string::npos);
  EXPECT_NE(Text.find("# isa: cmov"), std::string::npos);
  EXPECT_NE(Text.find("# length: 11"), std::string::npos);
  SavedKernel Loaded;
  ASSERT_TRUE(deserializeKernel(Text, Loaded));
  EXPECT_EQ(Loaded.Kind, MachineKind::Cmov);
  EXPECT_EQ(Loaded.N, 3u);
  EXPECT_EQ(Loaded.P, Kernel.P);
}

TEST(KernelIO, RoundTripMinMaxAndHybrid) {
  for (auto Kind : {MachineKind::MinMax, MachineKind::Hybrid}) {
    SavedKernel Kernel{Kind, 3,
                       Kind == MachineKind::MinMax ? paperSynthMinMax3()
                                                   : sortingNetworkCmov(3)};
    SavedKernel Loaded;
    ASSERT_TRUE(deserializeKernel(serializeKernel(Kernel), Loaded));
    EXPECT_EQ(Loaded.Kind, Kind);
    EXPECT_EQ(Loaded.P, Kernel.P);
  }
}

TEST(KernelIO, FileRoundTrip) {
  SavedKernel Kernel{MachineKind::Cmov, 2, sortingNetworkCmov(2)};
  std::string Path = "/tmp/sks_kernel_test.sks";
  ASSERT_TRUE(saveKernel(Kernel, Path));
  SavedKernel Loaded;
  ASSERT_TRUE(loadKernel(Path, Loaded));
  EXPECT_EQ(Loaded.P, Kernel.P);
  Machine M(Loaded.Kind, Loaded.N);
  EXPECT_TRUE(isCorrectKernel(M, Loaded.P));
  std::remove(Path.c_str());
}

TEST(KernelIO, RejectsMalformedInput) {
  SavedKernel Out;
  EXPECT_FALSE(deserializeKernel("", Out)) << "missing magic";
  EXPECT_FALSE(deserializeKernel("# sks-kernel v1\n# isa: cmov\n", Out))
      << "missing n";
  EXPECT_FALSE(deserializeKernel(
      "# sks-kernel v1\n# isa: weird\n# n: 3\nmov r1 r2\n", Out));
  EXPECT_FALSE(deserializeKernel(
      "# sks-kernel v1\n# isa: cmov\n# n: 3\nbogus r1 r2\n", Out));
  EXPECT_FALSE(loadKernel("/nonexistent/path.sks", Out));
}

TEST(KernelIO, RejectsLengthBodyMismatch) {
  // The torn-write signature: a "# length:" header disagreeing with the
  // program body must fail the parse, in either direction.
  SavedKernel Kernel{MachineKind::Cmov, 3, paperSynthCmov3()};
  std::string Text = serializeKernel(Kernel);
  SavedKernel Out;
  std::string Shorter = Text.substr(0, Text.rfind("cmov"));
  EXPECT_FALSE(deserializeKernel(Shorter, Out)) << "body shorter than header";
  std::string Longer = Text + "mov r1 r2\n";
  EXPECT_FALSE(deserializeKernel(Longer, Out)) << "body longer than header";
  EXPECT_FALSE(deserializeKernel(
      "# sks-kernel v1\n# isa: cmov\n# n: 3\n# length: nope\nmov r1 r2\n",
      Out))
      << "non-numeric length";
}

TEST(KernelIO, FailedParseLeavesOutputUntouched) {
  SavedKernel Out{MachineKind::MinMax, 4, sortingNetworkCmov(2)};
  SavedKernel Before = Out;
  EXPECT_FALSE(deserializeKernel("# sks-kernel v1\n# isa: cmov\n", Out));
  EXPECT_FALSE(
      deserializeKernel("# sks-kernel v1\n# isa: cmov\n# n: 3\n# length: 2\n"
                        "mov r1 r2\n",
                        Out));
  EXPECT_EQ(Out.Kind, Before.Kind);
  EXPECT_EQ(Out.N, Before.N);
  EXPECT_EQ(Out.P, Before.P);
}

TEST(KernelIO, LoadKernelBoundsOversizedFiles) {
  // loadKernel must refuse files beyond kMaxKernelFileBytes instead of
  // slurping attacker-sized input into memory.
  std::string Path = "/tmp/sks_kernel_oversize.sks";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::string Valid = serializeKernel(
      SavedKernel{MachineKind::Cmov, 2, sortingNetworkCmov(2)});
  std::fwrite(Valid.data(), 1, Valid.size(), F);
  std::string Padding(kMaxKernelFileBytes, '#');
  std::fwrite(Padding.data(), 1, Padding.size(), F);
  std::fclose(F);
  SavedKernel Out;
  EXPECT_FALSE(loadKernel(Path, Out));
  std::remove(Path.c_str());
}

TEST(KernelIO, ParseProgramRejectsMalformedInstructions) {
  struct Case {
    const char *Text;
    const char *Why;
  };
  // parseProgram must reject every malformed line; none of these may crash
  // or silently truncate. All use NumData = 3 (registers r1..r3, s1..s5).
  const Case Cases[] = {
      {"xchg r1 r2", "unknown mnemonic"},
      {"mov q1 r2", "bad register prefix"},
      {"mov r0 r2", "registers are 1-based"},
      {"mov s0 r2", "scratch registers are 1-based"},
      {"mov r9 r2", "register index beyond kMaxRegs"},
      {"mov r1 s6", "scratch index beyond kMaxRegs with n = 3"},
      {"mov r99 r2", "two-digit out-of-range index"},
      {"mov r4294967297 r2", "index that would wrap unsigned arithmetic"},
      {"mov r1", "truncated: missing source operand"},
      {"cmp r1", "truncated: cmp with one operand"},
      {"mov", "mnemonic only"},
      {"mov r1 r2 r3", "extra operand"},
      {"r1 r2", "operands without a mnemonic"},
      {"mov r 1", "register without an index"},
      {"mov r1x r2", "trailing garbage in register token"},
      {"mov r1 r2\nbogus r3 r1", "valid line followed by a bad one"},
  };
  for (const Case &C : Cases) {
    Program Out;
    EXPECT_FALSE(parseProgram(C.Text, 3, Out)) << C.Why << ": " << C.Text;
  }
}

TEST(KernelIO, ParseProgramAcceptsNoiseTolerantInput) {
  // The accepted dialect: comments, blank lines, commas, and the x86
  // mnemonic aliases all parse to the same instruction.
  Program Plain, Noisy;
  ASSERT_TRUE(parseProgram("mov r1 r2\npmin r1 r2\n", 3, Plain));
  ASSERT_TRUE(parseProgram(
      "# header comment\n\nmovdqa r1, r2  # copy\npminud r1, r2\n", 3, Noisy));
  EXPECT_EQ(Plain, Noisy);
  // Largest register representable in 3 bits: s5 with n = 3 is register 7.
  Program Edge;
  EXPECT_TRUE(parseProgram("mov s5 r1", 3, Edge));
  EXPECT_EQ(Edge.at(0).Dst, 7);
}

TEST(Equivalence, DetectsEqualAndDifferentKernels) {
  Machine M(MachineKind::Cmov, 3);
  Program Network = sortingNetworkCmov(3);
  Program Synth = paperSynthCmov3();
  // Both sort: equivalent on the data registers...
  EXPECT_TRUE(areEquivalentKernels(M, Network, Synth));
  // ...but not in full state (scratch/flags differ).
  EXPECT_FALSE(areEquivalentKernels(M, Network, Synth, /*FullState=*/true));
  // A kernel is always fully equivalent to itself.
  EXPECT_TRUE(areEquivalentKernels(M, Network, Network, /*FullState=*/true));
  // A non-sorting program differs from a sorting one.
  Program Broken = Network;
  Broken.pop_back();
  EXPECT_FALSE(areEquivalentKernels(M, Network, Broken));
}

TEST(SynthesizeOptimal, ProducesCertificateForN2) {
  Machine M(MachineKind::Cmov, 2);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.MaxLength = networkUpperBound(MachineKind::Cmov, 2);
  OptimalSynthesis R = synthesizeOptimal(M, Opts, 60);
  ASSERT_TRUE(R.Synthesis.Found);
  EXPECT_EQ(R.Synthesis.OptimalLength, 4u);
  EXPECT_TRUE(R.MinimalityProven);
}

TEST(SynthesizeOptimal, ProducesCertificateForMinMax3) {
  Machine M(MachineKind::MinMax, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.UseViability = true;
  Opts.MaxLength = networkUpperBound(MachineKind::MinMax, 3);
  OptimalSynthesis R = synthesizeOptimal(M, Opts, 120);
  ASSERT_TRUE(R.Synthesis.Found);
  EXPECT_EQ(R.Synthesis.OptimalLength, 8u);
  EXPECT_TRUE(R.MinimalityProven);
}

} // namespace
