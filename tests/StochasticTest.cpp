//===- tests/StochasticTest.cpp - Stochastic-engine determinism tests ---------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcts/Mcts.h"
#include "stoke/Stoke.h"

#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(Stoke, DeterministicPerSeed) {
  Machine M(MachineKind::Cmov, 2);
  StokeOptions Opts;
  Opts.Length = 4;
  Opts.MaxIterations = 200000;
  Opts.RngSeed = 99;
  StokeResult A = stokeSynthesize(M, Opts);
  StokeResult B = stokeSynthesize(M, Opts);
  EXPECT_EQ(A.Found, B.Found);
  EXPECT_EQ(A.Iterations, B.Iterations);
  EXPECT_EQ(A.BestCost, B.BestCost);
  EXPECT_EQ(A.Best, B.Best);
}

TEST(Stoke, DifferentSeedsExploreDifferently) {
  Machine M(MachineKind::Cmov, 3);
  StokeOptions Opts;
  Opts.Length = 11;
  Opts.MaxIterations = 5000;
  Opts.RngSeed = 1;
  StokeResult A = stokeSynthesize(M, Opts);
  Opts.RngSeed = 2;
  StokeResult B = stokeSynthesize(M, Opts);
  EXPECT_NE(A.Best, B.Best);
}

TEST(Stoke, BestCostNeverIncreasesAcrossBudget) {
  Machine M(MachineKind::Cmov, 3);
  StokeOptions Small, Large;
  Small.Length = Large.Length = 11;
  Small.RngSeed = Large.RngSeed = 7;
  Small.MaxIterations = 2000;
  Large.MaxIterations = 50000;
  StokeResult A = stokeSynthesize(M, Small);
  StokeResult B = stokeSynthesize(M, Large);
  EXPECT_LE(B.BestCost, A.BestCost)
      << "more proposals can only improve the best cost";
}

TEST(Stoke, MinMaxMachineSupported) {
  Machine M(MachineKind::MinMax, 2);
  StokeOptions Opts;
  Opts.Length = 3;
  Opts.MaxIterations = 2000000;
  Opts.TimeoutSeconds = 30;
  StokeResult R = stokeSynthesize(M, Opts);
  EXPECT_TRUE(R.Found) << "a 3-instruction pair sorter is easy to find";
  if (R.Found)
    EXPECT_TRUE(isCorrectKernel(M, R.Best));
}

TEST(Mcts, DeterministicPerSeed) {
  Machine M(MachineKind::Cmov, 2);
  MctsOptions Opts;
  Opts.MaxLength = 6;
  Opts.RolloutDepth = 6;
  Opts.MaxIterations = 5000;
  Opts.RngSeed = 5;
  MctsResult A = mctsSynthesize(M, Opts);
  MctsResult B = mctsSynthesize(M, Opts);
  EXPECT_EQ(A.Found, B.Found);
  EXPECT_EQ(A.Iterations, B.Iterations);
  EXPECT_EQ(A.P, B.P);
}

TEST(Mcts, FoundKernelIsAlwaysVerified) {
  Machine M(MachineKind::Cmov, 2);
  for (uint64_t Seed : {1ull, 2ull, 3ull}) {
    MctsOptions Opts;
    Opts.MaxLength = 6;
    Opts.RolloutDepth = 6;
    Opts.MaxIterations = UINT64_MAX;
    Opts.TimeoutSeconds = 60;
    Opts.RngSeed = Seed;
    MctsResult R = mctsSynthesize(M, Opts);
    if (R.Found)
      EXPECT_TRUE(isCorrectKernel(M, R.P)) << "seed " << Seed;
  }
}

TEST(Mcts, TreeGrowsWithBudget) {
  Machine M(MachineKind::Cmov, 3);
  MctsOptions Small, Large;
  Small.MaxLength = Large.MaxLength = 11;
  Small.RolloutDepth = Large.RolloutDepth = 11;
  Small.MaxIterations = 500;
  Large.MaxIterations = 5000;
  MctsResult A = mctsSynthesize(M, Small);
  MctsResult B = mctsSynthesize(M, Large);
  EXPECT_LE(A.TreeNodes, B.TreeNodes);
}

} // namespace
