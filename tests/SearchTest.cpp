//===- tests/SearchTest.cpp - Enumerative synthesis tests ------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/Search.h"

#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

SearchOptions bestConfig(MachineKind Kind, unsigned N) {
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.UseViability = true;
  Opts.Cut = CutConfig::mult(1.0);
  Opts.MaxLength = networkUpperBound(Kind, N);
  return Opts;
}

TEST(Search, FindsOptimalKernelForN2) {
  Machine M(MachineKind::Cmov, 2);
  SearchOptions Opts = bestConfig(MachineKind::Cmov, 2);
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 4u) << "section 2.2's n=2 kernel has length 4";
  EXPECT_TRUE(isCorrectKernel(M, R.Solutions.at(0)));
}

TEST(Search, FindsLength11KernelForN3) {
  Machine M(MachineKind::Cmov, 3);
  SearchResult R = synthesize(M, bestConfig(MachineKind::Cmov, 3));
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 11u) << "paper: optimal size 11 for n=3";
  EXPECT_TRUE(isCorrectKernel(M, R.Solutions.at(0)));
}

TEST(Search, FindsLength20KernelForN4) {
  Machine M(MachineKind::Cmov, 4);
  SearchResult R = synthesize(M, bestConfig(MachineKind::Cmov, 4));
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 20u) << "paper: optimal size 20 for n=4";
  EXPECT_TRUE(isCorrectKernel(M, R.Solutions.at(0)));
}

TEST(Search, MinMaxOptimalSizes) {
  // Section 5.4: synthesized min/max kernels have 8 / 15 instructions for
  // n = 3 / 4 (vs 9 / 15 for the network).
  for (auto [N, Expected] : {std::pair{3u, 8u}, {4u, 15u}}) {
    Machine M(MachineKind::MinMax, N);
    SearchResult R = synthesize(M, bestConfig(MachineKind::MinMax, N));
    ASSERT_TRUE(R.Found) << "n=" << N;
    EXPECT_EQ(R.OptimalLength, Expected) << "n=" << N;
    EXPECT_TRUE(isCorrectKernel(M, R.Solutions.at(0)));
  }
}

TEST(Search, DijkstraLayeredFindsMinimalLengthN2) {
  Machine M(MachineKind::Cmov, 2);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.Layered = true;
  Opts.MaxLength = 8;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 4u);
}

TEST(Search, AllSolutionsCountN2) {
  Machine M(MachineKind::Cmov, 2);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.MaxLength = 4;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.SolutionCount, 8u);
  EXPECT_EQ(R.Solutions.size(), 8u);
  for (const Program &P : R.Solutions) {
    EXPECT_EQ(P.size(), 4u);
    EXPECT_TRUE(isCorrectKernel(M, P));
  }
}

TEST(Search, AllSolutionsCountN3Is5602) {
  // The paper's headline enumeration result: 5602 optimal kernels of
  // length 11 for n=3 (Figure 2 / section 5.1).
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.UseViability = true;
  Opts.MaxLength = 11;
  Opts.MaxSolutionsKept = 0; // Count only.
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 11u);
  EXPECT_EQ(R.SolutionCount, 5602u);
}

TEST(Search, CutsShrinkTheSolutionSpaceMonotonically) {
  // Figure 2: k=2 preserves all 5602 solutions; k=1.5 and k=1 cut further.
  Machine M(MachineKind::Cmov, 3);
  auto CountWithCut = [&](CutConfig Cut) {
    SearchOptions Opts;
    Opts.Heuristic = HeuristicKind::None;
    Opts.FindAll = true;
    Opts.MaxLength = 11;
    Opts.MaxSolutionsKept = 0;
    Opts.Cut = Cut;
    SearchResult R = synthesize(M, Opts);
    return R.Found ? R.SolutionCount : 0;
  };
  uint64_t All = CountWithCut(CutConfig::none());
  uint64_t K2 = CountWithCut(CutConfig::mult(2.0));
  uint64_t K15 = CountWithCut(CutConfig::mult(1.5));
  uint64_t K1 = CountWithCut(CutConfig::mult(1.0));
  EXPECT_EQ(All, 5602u);
  EXPECT_GT(K2, 0u);
  EXPECT_LE(K15, K2);
  EXPECT_LE(K1, K15);
  EXPECT_GT(K1, 0u);
}

TEST(Search, ProveNoShorterKernelN2) {
  Machine M(MachineKind::Cmov, 2);
  SearchResult R;
  EXPECT_TRUE(proveNoKernelOfLength(M, 3, R));
  EXPECT_FALSE(R.Found);
}

TEST(Search, ProveNoLength10KernelN3) {
  // Half of the optimality certificate for n=3 (the paper validates
  // AlphaDev's minimality claim this way).
  Machine M(MachineKind::Cmov, 3);
  SearchResult R;
  EXPECT_TRUE(proveNoKernelOfLength(M, 10, R));
}

TEST(Search, ProofFailsWhenKernelExists) {
  Machine M(MachineKind::Cmov, 2);
  SearchResult R;
  EXPECT_FALSE(proveNoKernelOfLength(M, 4, R));
  EXPECT_TRUE(R.Found);
}

TEST(Search, SolutionsRespectMaxSolutionsKept) {
  Machine M(MachineKind::Cmov, 2);
  SearchOptions Opts;
  Opts.FindAll = true;
  Opts.MaxLength = 4;
  Opts.MaxSolutionsKept = 3;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.SolutionCount, 8u) << "count stays exact";
  EXPECT_EQ(R.Solutions.size(), 3u) << "reconstruction capped";
}

TEST(Search, TimeoutIsReported) {
  Machine M(MachineKind::Cmov, 4);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None; // Slow on purpose.
  Opts.MaxLength = 20;
  Opts.UseViability = false;
  Opts.UseDistanceTable = false;
  Opts.TimeoutSeconds = 0.2;
  SearchResult R = synthesize(M, Opts);
  EXPECT_FALSE(R.Found);
  EXPECT_TRUE(R.Stats.TimedOut);
}

TEST(Search, ParallelLayeredAgreesWithSequential) {
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts;
  Opts.FindAll = true;
  Opts.MaxLength = 11;
  Opts.MaxSolutionsKept = 0;
  SearchResult Sequential = synthesize(M, Opts);
  Opts.NumThreads = 4;
  SearchResult Parallel = synthesize(M, Opts);
  ASSERT_TRUE(Sequential.Found);
  ASSERT_TRUE(Parallel.Found);
  EXPECT_EQ(Parallel.OptimalLength, Sequential.OptimalLength);
  EXPECT_EQ(Parallel.SolutionCount, Sequential.SolutionCount);
}

TEST(Search, BatchExpansionAgreesWithSequential) {
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts;
  Opts.FindAll = true;
  Opts.MaxLength = 11;
  Opts.MaxSolutionsKept = 0;
  SearchResult Plain = synthesize(M, Opts);
  Opts.BatchExpansion = true;
  SearchResult Batch = synthesize(M, Opts);
  ASSERT_TRUE(Plain.Found && Batch.Found);
  EXPECT_EQ(Batch.SolutionCount, Plain.SolutionCount);
}

TEST(Search, NetworkUpperBoundsMatchKnownNetworks) {
  EXPECT_EQ(networkUpperBound(MachineKind::Cmov, 3), 12u);
  EXPECT_EQ(networkUpperBound(MachineKind::Cmov, 4), 20u);
  EXPECT_EQ(networkUpperBound(MachineKind::Cmov, 5), 36u);
  EXPECT_EQ(networkUpperBound(MachineKind::MinMax, 3), 9u);
  EXPECT_EQ(networkUpperBound(MachineKind::MinMax, 4), 15u);
  EXPECT_EQ(networkUpperBound(MachineKind::MinMax, 5), 27u);
}

TEST(Search, EveryHeuristicFindsACorrectKernelN3) {
  Machine M(MachineKind::Cmov, 3);
  for (HeuristicKind H :
       {HeuristicKind::PermCount, HeuristicKind::AssignCount,
        HeuristicKind::NeededInstrs}) {
    SearchOptions Opts;
    Opts.Heuristic = H;
    Opts.MaxLength = 12;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << static_cast<int>(H);
    EXPECT_TRUE(isCorrectKernel(M, R.Solutions.at(0)));
    EXPECT_LE(R.OptimalLength, 12u);
  }
}

TEST(Search, ActionFilterPreservesOptimumUnderLengthBound) {
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts = bestConfig(MachineKind::Cmov, 3);
  Opts.UseActionFilter = true;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 11u);
  EXPECT_GT(R.Stats.ActionsFiltered, 0u);
}

} // namespace
