//===- tests/MachineTest.cpp - Machine model unit tests --------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/BatchApply.h"
#include "machine/Machine.h"

#include "isa/Instr.h"
#include "kernels/ReferenceKernels.h"
#include "support/Permutations.h"
#include "support/Rng.h"
#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(Machine, PackInitialRoundTrips) {
  Machine M(MachineKind::Cmov, 3);
  uint32_t Row = M.packInitial({3, 1, 2});
  EXPECT_EQ(getReg(Row, 0), 3u);
  EXPECT_EQ(getReg(Row, 1), 1u);
  EXPECT_EQ(getReg(Row, 2), 2u);
  EXPECT_EQ(getReg(Row, 3), 0u) << "scratch starts uninitialized";
  EXPECT_EQ(Row & FlagMask, 0u) << "flags start clear";
}

TEST(Machine, SetRegPreservesOtherFields) {
  Machine M(MachineKind::Cmov, 4);
  uint32_t Row = M.packInitial({4, 3, 2, 1}) | FlagLT;
  Row = setReg(Row, 2, 4);
  EXPECT_EQ(getReg(Row, 0), 4u);
  EXPECT_EQ(getReg(Row, 1), 3u);
  EXPECT_EQ(getReg(Row, 2), 4u);
  EXPECT_EQ(getReg(Row, 3), 1u);
  EXPECT_TRUE(Row & FlagLT);
}

TEST(Machine, CmpSetsFlags) {
  Machine M(MachineKind::Cmov, 2);
  uint32_t Row = M.packInitial({2, 1});
  uint32_t AfterLt = M.apply(Row, Instr{Opcode::Cmp, 1, 0}); // r2 < r1
  EXPECT_TRUE(AfterLt & FlagLT);
  EXPECT_FALSE(AfterLt & FlagGT);
  uint32_t AfterGt = M.apply(Row, Instr{Opcode::Cmp, 0, 1}); // r1 > r2
  EXPECT_TRUE(AfterGt & FlagGT);
  EXPECT_FALSE(AfterGt & FlagLT);
}

TEST(Machine, CmpOnEqualValuesClearsBothFlags) {
  Machine M(MachineKind::Cmov, 2);
  uint32_t Row = M.packInitial({2, 1});
  Row = M.apply(Row, Instr{Opcode::Mov, 1, 0}); // r2 := r1
  Row = M.apply(Row, Instr{Opcode::Cmp, 0, 1});
  EXPECT_EQ(Row & FlagMask, 0u);
}

TEST(Machine, CMovFiresOnlyUnderItsFlag) {
  Machine M(MachineKind::Cmov, 2);
  uint32_t Row = M.packInitial({2, 1});
  // No cmp yet: conditional moves are no-ops.
  EXPECT_EQ(M.apply(Row, Instr{Opcode::CMovL, 0, 1}), Row);
  EXPECT_EQ(M.apply(Row, Instr{Opcode::CMovG, 0, 1}), Row);
  Row = M.apply(Row, Instr{Opcode::Cmp, 0, 1}); // r1 > r2 -> gt
  EXPECT_EQ(M.apply(Row, Instr{Opcode::CMovL, 0, 1}), Row)
      << "cmovl must not fire under gt";
  uint32_t Moved = M.apply(Row, Instr{Opcode::CMovG, 0, 1});
  EXPECT_EQ(getReg(Moved, 0), 1u);
}

TEST(Machine, PaperSection22ExampleSortsTwoElements) {
  // The n=2 example of section 2.2: mov s1 r2; cmp r1 r2; cmovg r2 r1;
  // cmovg r1 s1.
  Machine M(MachineKind::Cmov, 2);
  Program P;
  ASSERT_TRUE(parseProgram("mov s1 r2\ncmp r1 r2\ncmovg r2 r1\ncmovg r1 s1",
                           M.numData(), P));
  ASSERT_EQ(P.size(), 4u);
  EXPECT_TRUE(isCorrectKernel(M, P));

  // Re-trace the table from the paper for input (2, 1).
  uint32_t Row = M.packInitial({2, 1});
  Row = M.apply(Row, P[0]);
  EXPECT_EQ(getReg(Row, 2), 1u); // s1 = 1
  Row = M.apply(Row, P[1]);
  EXPECT_TRUE(Row & FlagGT);
  Row = M.apply(Row, P[2]);
  EXPECT_EQ(getReg(Row, 1), 2u); // r2 = 2
  Row = M.apply(Row, P[3]);
  EXPECT_EQ(getReg(Row, 0), 1u); // r1 = 1
  EXPECT_TRUE(M.isSorted(Row));
}

TEST(Machine, MinMaxSemantics) {
  Machine M(MachineKind::MinMax, 3);
  uint32_t Row = M.packInitial({3, 1, 2});
  uint32_t AfterMin = M.apply(Row, Instr{Opcode::Min, 0, 1});
  EXPECT_EQ(getReg(AfterMin, 0), 1u);
  EXPECT_EQ(getReg(AfterMin, 1), 1u) << "source operand is unchanged";
  uint32_t AfterMax = M.apply(Row, Instr{Opcode::Max, 1, 2});
  EXPECT_EQ(getReg(AfterMax, 1), 2u);
  EXPECT_EQ(getReg(AfterMax, 2), 2u);
}

TEST(Machine, MinMaxCompareAndSwapSortsPair) {
  // pmin/pmax compare-and-swap from section 2.1: s1 := r1; r1 := min(r1,
  // r2); r2 := max(r2, s1).
  Machine M(MachineKind::MinMax, 2);
  Program P;
  ASSERT_TRUE(
      parseProgram("movdqa s1 r1\npmin r1 r2\npmax r2 s1", M.numData(), P));
  EXPECT_TRUE(isCorrectKernel(M, P));
}

TEST(Machine, InstructionAlphabetSizeCmov) {
  // cmp: C(R,2); mov/cmovl/cmovg: R*(R-1) each.
  for (unsigned N = 2; N <= 5; ++N) {
    Machine M(MachineKind::Cmov, N);
    unsigned R = M.numRegs();
    EXPECT_EQ(M.instructions().size(), R * (R - 1) / 2 + 3 * R * (R - 1));
  }
}

TEST(Machine, InstructionAlphabetSizeMinMax) {
  for (unsigned N = 2; N <= 5; ++N) {
    Machine M(MachineKind::MinMax, N);
    unsigned R = M.numRegs();
    EXPECT_EQ(M.instructions().size(), 3 * R * (R - 1));
  }
}

TEST(Machine, CmpOperandsAreOrdered) {
  Machine M(MachineKind::Cmov, 4);
  for (const Instr &I : M.instructions()) {
    if (I.Op != Opcode::Cmp)
      continue;
    EXPECT_LT(I.Dst, I.Src) << "section 3.2 symmetry restriction";
  }
}

TEST(Machine, InitialRowsCoverAllPermutations) {
  Machine M(MachineKind::Cmov, 4);
  std::vector<uint32_t> Rows = M.initialRows();
  EXPECT_EQ(Rows.size(), factorial(4));
  std::sort(Rows.begin(), Rows.end());
  EXPECT_EQ(std::unique(Rows.begin(), Rows.end()), Rows.end());
}

TEST(Machine, RunExecutesSequentially) {
  Machine M(MachineKind::Cmov, 2);
  Program P;
  ASSERT_TRUE(parseProgram("cmp r1 r2\ncmovg s1 r1\ncmovg r1 r2\ncmovg r2 s1",
                           M.numData(), P));
  EXPECT_TRUE(isCorrectKernel(M, P));
}

TEST(Instr, ToStringAndParseRoundTrip) {
  Machine M(MachineKind::Cmov, 3);
  for (const Instr &I : M.instructions()) {
    Program P;
    ASSERT_TRUE(parseProgram(toString(I, 3), 3, P));
    ASSERT_EQ(P.size(), 1u);
    EXPECT_EQ(P[0], I);
  }
}

TEST(Instr, ParseRejectsMalformedInput) {
  Program P;
  EXPECT_FALSE(parseProgram("mov r1", 3, P));
  EXPECT_FALSE(parseProgram("bogus r1 r2", 3, P));
  EXPECT_FALSE(parseProgram("mov r0 r1", 3, P)) << "registers are 1-based";
  EXPECT_FALSE(parseProgram("mov r1 r2 r3", 3, P));
  EXPECT_TRUE(parseProgram("# comment only\n\n", 3, P));
  EXPECT_TRUE(P.empty());
}

TEST(Instr, CountMixMatchesPaperCategories) {
  Program P;
  ASSERT_TRUE(parseProgram("mov s1 r1\ncmp r1 r2\ncmovl r1 r2\ncmovg r2 s1",
                           2, P));
  InstrMix Mix = countMix(P);
  EXPECT_EQ(Mix.Mov, 1u);
  EXPECT_EQ(Mix.Cmp, 1u);
  EXPECT_EQ(Mix.CMov, 2u);
  EXPECT_EQ(Mix.Other, 0u);
}

TEST(Machine, HybridAlphabetRespectsRegisterFiles) {
  Machine M(MachineKind::Hybrid, 3);
  EXPECT_EQ(M.numRegs(), 8u) << "4 GPRs + 4 vector registers";
  for (const Instr &I : M.instructions()) {
    switch (I.Op) {
    case Opcode::Cmp:
    case Opcode::CMovL:
    case Opcode::CMovG:
      EXPECT_FALSE(M.isVectorReg(I.Dst)) << toString(I, 3);
      EXPECT_FALSE(M.isVectorReg(I.Src)) << toString(I, 3);
      break;
    case Opcode::Min:
    case Opcode::Max:
      EXPECT_TRUE(M.isVectorReg(I.Dst)) << toString(I, 3);
      EXPECT_TRUE(M.isVectorReg(I.Src)) << toString(I, 3);
      break;
    case Opcode::Mov:
      break; // Any pair: intra-file moves and movd transfers.
    }
  }
}

TEST(Machine, HybridRunsCmovAndMinMaxKernels) {
  // Pure kernels from either file embed into the hybrid machine: the cmov
  // kernel verbatim, the min/max kernel behind transfers.
  Machine M(MachineKind::Hybrid, 3);
  EXPECT_TRUE(isCorrectKernel(M, sortingNetworkCmov(3)));
  // Transfer in, sort with min/max CAS on vector regs 4..7, transfer out.
  Program P;
  auto Mov = [](unsigned D, unsigned S) {
    return Instr{Opcode::Mov, static_cast<uint8_t>(D),
                 static_cast<uint8_t>(S)};
  };
  for (unsigned I = 0; I != 3; ++I)
    P.push_back(Mov(4 + I, I)); // movd to the vector file.
  for (auto [A, B] : networkPairs(3)) {
    Program Cas = casMinMax(4 + A, 4 + B, 7);
    P.insert(P.end(), Cas.begin(), Cas.end());
  }
  for (unsigned I = 0; I != 3; ++I)
    P.push_back(Mov(I, 4 + I)); // movd back.
  EXPECT_TRUE(isCorrectKernel(M, P));
}

TEST(BatchApply, MatchesScalarApplyOnRandomRows) {
  // The SIMD batch transform must agree with Machine::apply lane for lane
  // across every instruction of every machine kind.
  for (MachineKind Kind :
       {MachineKind::Cmov, MachineKind::MinMax, MachineKind::Hybrid}) {
    Machine M(Kind, 3);
    Rng R(31 + static_cast<int>(Kind));
    // Random plausible rows: random register values 0..3, random flags.
    std::vector<uint32_t> Rows(1027); // Odd size: exercises the tail.
    for (uint32_t &Row : Rows) {
      Row = 0;
      for (unsigned Reg = 0; Reg != M.numRegs(); ++Reg)
        Row = setReg(Row, Reg, static_cast<uint32_t>(R.below(4)));
      unsigned F = static_cast<unsigned>(R.below(3));
      if (F == 1)
        Row |= FlagLT;
      if (F == 2)
        Row |= FlagGT;
    }
    std::vector<uint32_t> Batch(Rows.size());
    for (const Instr &I : M.instructions()) {
      applyBatch(M, I, Rows.data(), Batch.data(), Rows.size());
      for (size_t Idx = 0; Idx != Rows.size(); ++Idx)
        ASSERT_EQ(Batch[Idx], M.apply(Rows[Idx], I))
            << toString(I, 3) << " row " << Idx;
    }
  }
}

TEST(BatchApply, InPlaceAliasing) {
  Machine M(MachineKind::Cmov, 4);
  std::vector<uint32_t> Rows = M.initialRows();
  std::vector<uint32_t> Expected = Rows;
  Instr I{Opcode::Cmp, 0, 1};
  for (uint32_t &Row : Expected)
    Row = M.apply(Row, I);
  applyBatch(M, I, Rows.data(), Rows.data(), Rows.size());
  EXPECT_EQ(Rows, Expected);
}

} // namespace
