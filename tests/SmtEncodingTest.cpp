//===- tests/SmtEncodingTest.cpp - SMT-encoding option tests ------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSynth.h"

#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(SmtEncoding, NoConsecutiveCmpIsHonored) {
  Machine M(MachineKind::Cmov, 2);
  SmtOptions Opts;
  Opts.Length = 5; // Slack so the constraint actually bites somewhere.
  Opts.NoConsecutiveCmp = true;
  Opts.TimeoutSeconds = 60;
  SmtResult R = smtSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(isCorrectKernel(M, R.P));
  for (size_t I = 0; I + 1 < R.P.size(); ++I)
    EXPECT_FALSE(R.P[I].Op == Opcode::Cmp && R.P[I + 1].Op == Opcode::Cmp);
}

TEST(SmtEncoding, FirstInstrCmpIsHonored) {
  Machine M(MachineKind::Cmov, 2);
  SmtOptions Opts;
  Opts.Length = 5;
  Opts.FirstInstrCmp = true;
  Opts.TimeoutSeconds = 60;
  SmtResult R = smtSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.P.front().Op, Opcode::Cmp);
  EXPECT_TRUE(isCorrectKernel(M, R.P));
}

TEST(SmtEncoding, SymmetricCmpsWidenTheAlphabet) {
  // With the widened alphabet the solver may emit cmp with descending
  // operand indices; the kernel must still verify (the machine's apply
  // handles any operand order).
  Machine M(MachineKind::Cmov, 2);
  SmtOptions Opts;
  Opts.Length = 4;
  Opts.IncludeSymmetricCmps = true;
  Opts.TimeoutSeconds = 60;
  SmtResult R = smtSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(isCorrectKernel(M, R.P));
}

TEST(SmtEncoding, BothGoalIsStillSatisfiableAtOptimum) {
  Machine M(MachineKind::Cmov, 2);
  SmtOptions Opts;
  Opts.Length = 4;
  Opts.Goal = SmtGoal::Both;
  Opts.TimeoutSeconds = 60;
  SmtResult R = smtSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(isCorrectKernel(M, R.P));
}

TEST(SmtEncoding, CountZeroOffStillCorrect) {
  Machine M(MachineKind::Cmov, 2);
  SmtOptions Opts;
  Opts.Length = 4;
  Opts.Goal = SmtGoal::AscendingCounts;
  Opts.CountZero = false;
  Opts.TimeoutSeconds = 60;
  SmtResult R = smtSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(isCorrectKernel(M, R.P));
}

TEST(SmtEncoding, ReportsInstanceSizes) {
  Machine M(MachineKind::Cmov, 2);
  SmtOptions Opts;
  Opts.Length = 4;
  Opts.TimeoutSeconds = 60;
  SmtResult R = smtSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.NumVars, 100u);
  EXPECT_GT(R.NumClauses, 500u);
}

TEST(SmtEncoding, CegisIterationsGrowWithHarderSeeds) {
  Machine M(MachineKind::Cmov, 3);
  SmtOptions Opts;
  Opts.Length = 12;
  Opts.Cegis = true;
  Opts.TimeoutSeconds = 300;
  SmtResult R = smtSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_GE(R.CegisIterations, 2u)
      << "one example cannot pin down a 3-element sorter";
  EXPECT_TRUE(isCorrectKernel(M, R.P));
}

} // namespace
