//===- tests/ValidateTest.cpp - Translation-validation tests ---------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The decoder and symbolic executor of validate/: acceptance on every
// shipped and reference kernel across all emission paths, hostile-input
// robustness (every-prefix truncation and a random byte-flip corpus —
// run under the sanitizer trees, these double as memory-safety proofs),
// discipline-layer unit tests from hand-assembled streams, and the
// mutation pin: targeted semantic byte-mutants of real emissions must be
// rejected without exception.
//
//===----------------------------------------------------------------------===//

#include "validate/Decoder.h"
#include "validate/SymbolicExec.h"

#include "codegen/Jit.h"
#include "kernels/KernelIO.h"
#include "kernels/ReferenceKernels.h"
#include "search/Search.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace sks;

namespace {

/// The four emission paths of one (Kind, N, P) kernel.
struct EmissionPath {
  const char *Name;
  bool PairLanes;
  EmittedCode Code;
};

std::vector<EmissionPath> emitAllPaths(MachineKind Kind, unsigned N,
                                       const Program &P) {
  return {{"scalar", false, emitKernelBytes(Kind, N, P)},
          {"pair", true, emitPairKernelBytes(Kind, N, P)}};
}

ValidationReport validatePath(const EmissionPath &Path, MachineKind Kind,
                              unsigned N, const Program &P) {
  return validateKernelBytes(Path.Code.Bytes.data(), Path.Code.Bytes.size(),
                             Kind, N, P, GoalSpec::sort(), Path.PairLanes);
}

bool hasRule(const ValidationReport &R, ValidationRule Rule) {
  return std::any_of(R.Findings.begin(), R.Findings.end(),
                     [Rule](const ValidationFinding &F) {
                       return F.Rule == Rule;
                     });
}

//===----------------------------------------------------------------------===//
// Decoder: round trips and typed rejections
//===----------------------------------------------------------------------===//

TEST(Decoder, RoundTripsEveryEmissionPath) {
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::MinMax})
    for (unsigned N = 2; N <= 6; ++N) {
      Program P = Kind == MachineKind::Cmov ? sortingNetworkCmov(N)
                                            : sortingNetworkMinMax(N);
      for (const EmissionPath &Path : emitAllPaths(Kind, N, P)) {
        ASSERT_EQ(Path.Code.Status, EmitStatus::Ok);
        DecodeResult D =
            decodeX86(Path.Code.Bytes.data(), Path.Code.Bytes.size());
        ASSERT_TRUE(D.Ok) << Path.Name << " n=" << N << ": " << D.Error;
        ASSERT_FALSE(D.Insns.empty());
        EXPECT_EQ(D.Insns.back().Op, X86Op::Ret);
        // Every decoded instruction covers its bytes exactly; the stream
        // has no gaps or overlaps.
        uint32_t Expect = 0;
        for (const X86Insn &I : D.Insns) {
          EXPECT_EQ(I.Offset, Expect);
          EXPECT_GT(I.Length, 0u);
          Expect += I.Length;
        }
        EXPECT_EQ(Expect, Path.Code.Bytes.size());
      }
    }
}

TEST(Decoder, RejectsStreamsOutsideTheSubset) {
  auto Reject = [](std::vector<uint8_t> Bytes, const char *Why) {
    DecodeResult D = decodeX86(Bytes.data(), Bytes.size());
    EXPECT_FALSE(D.Ok) << Why;
    EXPECT_FALSE(D.Error.empty()) << Why;
  };
  Reject({}, "empty stream (no ret)");
  Reject({0x90, 0xC3}, "nop is not in the subset");
  Reject({0x40, 0x31, 0xC0, 0xC3}, "non-canonical empty REX");
  Reject({0x42, 0x8B, 0xC1, 0xC3}, "REX.X has no SIB to index");
  Reject({0xC3, 0x00}, "trailing bytes after ret");
  Reject({0x8B, 0xC1}, "stream ends without ret");
  Reject({0x8B}, "truncated ModRM");
  Reject({0x31, 0xC1, 0xC3}, "xor with distinct operands");
  Reject({0x66, 0x0F, 0xEF, 0xC1, 0xC3}, "pxor with distinct operands");
  Reject({0x8B, 0x07, 0xC3}, "mov [rdi] without disp8 (mod=00)");
  Reject({0x8B, 0x45, 0x00, 0xC3}, "memory base other than rdi");
  Reject({0x41, 0x89, 0x47, 0x00, 0xC3}, "REX.B on a memory form");
  Reject({0x48, 0xC3}, "REX prefix on ret");
  Reject({0x0F, 0x4E, 0xC1, 0xC3}, "cmovle is not in the subset");
  Reject({0x66, 0x0F, 0x38, 0x40, 0xC1, 0xC3}, "pmulld is not in the subset");
  Reject({0xF3, 0x0F, 0x6F, 0x07, 0xC3}, "movdqu is not in the subset");
}

TEST(Decoder, EveryPrefixTruncationIsRejected) {
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::MinMax}) {
    Program P = Kind == MachineKind::Cmov ? sortingNetworkCmov(4)
                                          : sortingNetworkMinMax(4);
    for (const EmissionPath &Path : emitAllPaths(Kind, 4, P)) {
      ASSERT_EQ(Path.Code.Status, EmitStatus::Ok);
      for (size_t Len = 0; Len != Path.Code.Bytes.size(); ++Len) {
        DecodeResult D = decodeX86(Path.Code.Bytes.data(), Len);
        EXPECT_FALSE(D.Ok) << Path.Name << " truncated to " << Len;
        ValidationReport R = validateKernelBytes(Path.Code.Bytes.data(), Len,
                                                 Kind, 4, P, GoalSpec::sort(),
                                                 Path.PairLanes);
        EXPECT_TRUE(R.Applicable);
        EXPECT_FALSE(R.Ok) << Path.Name << " truncated to " << Len;
      }
    }
  }
}

TEST(Decoder, RandomByteFlipCorpusNeverCrashes) {
  // Robustness, not rejection: a flipped byte may still decode (even, in
  // rare reg-redirection cases, still validate — the validator proves
  // equivalence, not byte identity). The property under test is that the
  // decoder and executor stay total and internally consistent on the
  // whole corpus; under the ASan/UBSan trees this is a memory-safety
  // sweep of the hostile-input paths.
  Rng R(12345);
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::MinMax}) {
    Program P = Kind == MachineKind::Cmov ? sortingNetworkCmov(3)
                                          : sortingNetworkMinMax(3);
    for (const EmissionPath &Path : emitAllPaths(Kind, 3, P)) {
      ASSERT_EQ(Path.Code.Status, EmitStatus::Ok);
      for (int Trial = 0; Trial != 500; ++Trial) {
        std::vector<uint8_t> Mutant = Path.Code.Bytes;
        size_t At = static_cast<size_t>(
            R.range(0, static_cast<int>(Mutant.size()) - 1));
        Mutant[At] ^= static_cast<uint8_t>(R.range(1, 255));
        DecodeResult D = decodeX86(Mutant.data(), Mutant.size());
        if (!D.Ok)
          EXPECT_FALSE(D.Error.empty());
        ValidationReport V =
            validateKernelBytes(Mutant.data(), Mutant.size(), Kind, 3, P,
                                GoalSpec::sort(), Path.PairLanes);
        EXPECT_TRUE(V.Applicable);
        EXPECT_EQ(V.Ok, V.Findings.empty());
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Acceptance: shipped, reference, and goal kernels
//===----------------------------------------------------------------------===//

TEST(Validate, AcceptsEveryPrebuiltKernelOnBothPaths) {
  const char *Files[] = {"sort2_cmov.sks", "sort3_cmov.sks",
                         "sort3_minmax.sks", "sort4_cmov.sks"};
  for (const char *File : Files) {
    SavedKernel Kernel;
    ASSERT_TRUE(loadKernel(std::string(SKS_SOURCE_DIR) + "/kernels_prebuilt/" +
                               File,
                           Kernel))
        << File;
    ValidationReport Scalar =
        validateJitKernel(Kernel.Kind, Kernel.N, Kernel.P);
    EXPECT_TRUE(Scalar.Applicable) << File;
    EXPECT_TRUE(Scalar.Ok) << File << ": " << Scalar.summary();
    ValidationReport Pair =
        validateJitPairKernel(Kernel.Kind, Kernel.N, Kernel.P);
    EXPECT_TRUE(Pair.Applicable) << File;
    EXPECT_TRUE(Pair.Ok) << File << ": " << Pair.summary();
  }
}

TEST(Validate, AcceptsReferenceNetworksAcrossAllLengths) {
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::MinMax})
    for (unsigned N = 2; N <= 6; ++N) {
      Program P = Kind == MachineKind::Cmov ? sortingNetworkCmov(N)
                                            : sortingNetworkMinMax(N);
      ValidationReport Scalar = validateJitKernel(Kind, N, P);
      ASSERT_TRUE(Scalar.Applicable);
      EXPECT_TRUE(Scalar.Ok) << "scalar n=" << N << ": " << Scalar.summary();
      EXPECT_EQ(Scalar.BooleanVectors, 1u << N);
      ValidationReport Pair = validateJitPairKernel(Kind, N, P);
      ASSERT_TRUE(Pair.Applicable);
      EXPECT_TRUE(Pair.Ok) << "pair n=" << N << ": " << Pair.summary();
    }
}

TEST(Validate, AcceptsPaperSynthKernels) {
  EXPECT_TRUE(validateJitKernel(MachineKind::Cmov, 3, paperSynthCmov3()).Ok);
  EXPECT_TRUE(
      validateJitKernel(MachineKind::MinMax, 3, paperSynthMinMax3()).Ok);
  EXPECT_TRUE(
      validateJitPairKernel(MachineKind::Cmov, 3, paperSynthCmov3()).Ok);
  EXPECT_TRUE(
      validateJitPairKernel(MachineKind::MinMax, 3, paperSynthMinMax3()).Ok);
}

TEST(Validate, AcceptsSynthesizedGoalKernel) {
  // A freshly synthesized select-2 (median-of-3) kernel: shorter than a
  // full sort, and validated under its own goal so the threshold layer
  // pins only the goal's slots.
  const GoalSpec Goal = GoalSpec::selectK(2);
  Machine M(MachineKind::Cmov, 3, /*Scratch=*/1, Goal);
  SearchResult R = synthesize(M, SearchOptions());
  ASSERT_TRUE(R.Found);
  ValidationReport Scalar =
      validateJitKernel(MachineKind::Cmov, 3, R.Solutions.front(), Goal);
  ASSERT_TRUE(Scalar.Applicable);
  EXPECT_TRUE(Scalar.Ok) << Scalar.summary();
  ValidationReport Pair =
      validateJitPairKernel(MachineKind::Cmov, 3, R.Solutions.front(), Goal);
  ASSERT_TRUE(Pair.Applicable);
  EXPECT_TRUE(Pair.Ok) << Pair.summary();
}

TEST(Validate, HybridKernelsAreNotApplicable) {
  ValidationReport R = validateJitKernel(MachineKind::Hybrid, 3, Program());
  EXPECT_FALSE(R.Applicable);
  EXPECT_FALSE(validateJitPairKernel(MachineKind::Hybrid, 3, Program())
                   .Applicable);
}

TEST(Validate, RejectsCodeForADifferentProgram) {
  // The n=3 network's bytes against an empty (identity) IR: the streams
  // are well-formed and disciplined, so the rejection must come from the
  // semantic layer itself.
  EmittedCode Code =
      emitKernelBytes(MachineKind::Cmov, 3, sortingNetworkCmov(3));
  ASSERT_EQ(Code.Status, EmitStatus::Ok);
  ValidationReport R =
      validateKernelBytes(Code.Bytes.data(), Code.Bytes.size(),
                          MachineKind::Cmov, 3, Program(), GoalSpec::sort(),
                          false);
  ASSERT_TRUE(R.Applicable);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::Semantics)) << R.summary();
}

TEST(Validate, ZeroSensitiveKernelsWidenTheOrderFamily) {
  // A kernel that never observes the zero-initialized scratch runs the
  // basic n^n family; one that compares against scratch zero widens to
  // (n+2)*(n+1)^n so every position of the constant 0 among the inputs
  // is enumerated (negative inputs sort differently against 0 than the
  // positive test values would show).
  ValidationReport Plain =
      validateJitKernel(MachineKind::Cmov, 2, sortingNetworkCmov(2));
  ASSERT_TRUE(Plain.Ok) << Plain.summary();
  EXPECT_EQ(Plain.OrderVectors, 4u); // 2^2

  Program CmpZero = {{Opcode::Cmp, 0, 2}}; // cmp r1, s1 — s1 is still 0
  ValidationReport Widened = validateJitKernel(MachineKind::Cmov, 2, CmpZero);
  ASSERT_TRUE(Widened.Applicable);
  EXPECT_TRUE(Widened.Ok) << Widened.summary();
  EXPECT_EQ(Widened.OrderVectors, 36u); // (2+2)*(2+1)^2

  Program MinZero = {{Opcode::Min, 0, 2}}; // r1 := min(r1, 0)
  ValidationReport MinMax = validateJitKernel(MachineKind::MinMax, 2, MinZero);
  ASSERT_TRUE(MinMax.Applicable);
  EXPECT_TRUE(MinMax.Ok) << MinMax.summary();
  EXPECT_EQ(MinMax.OrderVectors, 36u);
}

//===----------------------------------------------------------------------===//
// Discipline layers: hand-assembled streams
//===----------------------------------------------------------------------===//

ValidationReport validateScalarBytes(std::vector<uint8_t> Bytes,
                                     unsigned N = 2) {
  return validateKernelBytes(Bytes.data(), Bytes.size(), MachineKind::Cmov, N,
                             Program(), GoalSpec::sort(), false);
}

TEST(ValidateDiscipline, HostRegisterClobberIsRejected) {
  // mov ebx, eax: ebx is callee-saved and outside the model file.
  ValidationReport R = validateScalarBytes({0x8B, 0xD8, 0xC3});
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::RegisterDiscipline)) << R.summary();
}

TEST(ValidateDiscipline, CmovUnderUndefinedFlagsIsRejected) {
  // Both loads, cmovl, both stores — but no cmp or prologue xor ever
  // defines the flags the cmov reads.
  ValidationReport R = validateScalarBytes({0x8B, 0x47, 0x00,   // mov eax,[rdi]
                                           0x8B, 0x4F, 0x04,   // mov ecx,[rdi+4]
                                           0x0F, 0x4C, 0xC1,   // cmovl eax,ecx
                                           0x89, 0x47, 0x00,   // mov [rdi],eax
                                           0x89, 0x4F, 0x04,   // mov [rdi+4],ecx
                                           0xC3});
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::FlagDiscipline)) << R.summary();
}

TEST(ValidateDiscipline, MisalignedDisplacementIsRejected) {
  ValidationReport R = validateScalarBytes({0x8B, 0x47, 0x01, 0xC3});
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::MemoryDiscipline)) << R.summary();
}

TEST(ValidateDiscipline, SlotBeyondTheArrayIsRejected) {
  // [rdi + 8] is slot 2 of a 2-element scalar array.
  ValidationReport R = validateScalarBytes({0x8B, 0x47, 0x08, 0xC3});
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::MemoryDiscipline)) << R.summary();
}

TEST(ValidateDiscipline, UninitializedReadIsRejected) {
  // cmp eax, ecx before anything defines either register.
  ValidationReport R = validateScalarBytes({0x3B, 0xC1, 0xC3});
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::UninitRead)) << R.summary();
}

TEST(ValidateDiscipline, DoubleStoreIsRejected) {
  ValidationReport R = validateScalarBytes({0x8B, 0x47, 0x00,   // mov eax,[rdi]
                                           0x89, 0x47, 0x00,   // mov [rdi],eax
                                           0x89, 0x47, 0x00,   // again
                                           0xC3});
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::MemoryDiscipline)) << R.summary();
}

TEST(ValidateDiscipline, WrongLaneWidthIsRejected) {
  // A 32-bit load in a pair-lane (64-bit) stream.
  ValidationReport R =
      validateKernelBytes(std::vector<uint8_t>{0x8B, 0x47, 0x00, 0xC3}.data(),
                          4, MachineKind::Cmov, 2, Program(), GoalSpec::sort(),
                          true);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::RegisterDiscipline)) << R.summary();
}

TEST(ValidateDiscipline, WrongPathOpcodeIsRejected) {
  // A GPR cmp inside a min/max kernel's stream.
  ValidationReport R =
      validateKernelBytes(std::vector<uint8_t>{0x3B, 0xC1, 0xC3}.data(), 3,
                          MachineKind::MinMax, 2, Program(), GoalSpec::sort(),
                          false);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::RegisterDiscipline)) << R.summary();
}

TEST(ValidateDiscipline, BlendWithoutStagedMaskIsRejected) {
  // Pair min/max stream where blendvpd runs before any pcmpgtq staged a
  // mask into xmm0: the staging state machine must reject it.
  std::vector<uint8_t> Bytes = {
      0xF3, 0x0F, 0x7E, 0x4F, 0x00,       // movq xmm1, [rdi]
      0xF3, 0x0F, 0x7E, 0x57, 0x08,       // movq xmm2, [rdi+8]
      0x66, 0x0F, 0x38, 0x15, 0xCA,       // blendvpd xmm1, xmm2
      0x66, 0x0F, 0xD6, 0x4F, 0x00,       // movq [rdi], xmm1
      0x66, 0x0F, 0xD6, 0x57, 0x08,       // movq [rdi+8], xmm2
      0xC3};
  ValidationReport R =
      validateKernelBytes(Bytes.data(), Bytes.size(), MachineKind::MinMax, 2,
                          Program(), GoalSpec::sort(), true);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(hasRule(R, ValidationRule::FlagDiscipline)) << R.summary();
}

//===----------------------------------------------------------------------===//
// Mutation pinning: targeted semantic mutants must all be rejected
//===----------------------------------------------------------------------===//

/// Builds byte-mutants of \p Code that are semantically guaranteed to
/// change the computed function or break a discipline layer — unlike
/// random bit flips, none of these can be an equivalent reg-redirection.
std::vector<std::vector<uint8_t>> semanticMutants(const EmittedCode &Code,
                                                  bool PairLanes) {
  std::vector<std::vector<uint8_t>> Mutants;
  DecodeResult D = decodeX86(Code.Bytes.data(), Code.Bytes.size());
  if (!D.Ok)
    return Mutants;
  auto Mutate = [&](size_t At, uint8_t NewByte) {
    Mutants.push_back(Code.Bytes);
    Mutants.back()[At] = NewByte;
  };
  const unsigned Lane = PairLanes ? 8 : 4;
  for (const X86Insn &I : D.Insns) {
    const size_t OpByte = I.Offset + I.Length - 2;   // reg-reg: before ModRM
    const size_t DispByte = I.Offset + I.Length - 1; // memory: the disp8
    switch (I.Op) {
    case X86Op::CMovL: // flip the condition: 0F 4C <-> 0F 4F
      Mutate(OpByte, 0x4F);
      break;
    case X86Op::CMovG:
      Mutate(OpByte, 0x4C);
      break;
    case X86Op::CmpRR: // cmp -> mov clobbers the compared register
      Mutate(OpByte, 0x8B);
      break;
    case X86Op::PMinSD: // min <-> max
      Mutate(OpByte, 0x3D);
      break;
    case X86Op::PMaxSD:
      Mutate(OpByte, 0x39);
      break;
    case X86Op::PCmpGtQ: // mask producer -> data op starves blendvpd
      Mutate(OpByte, 0x39);
      break;
    case X86Op::GprStore: // store -> load leaves the slot unwritten
      Mutate(I.Offset + I.Length - 3, 0x8B);
      Mutate(DispByte, static_cast<uint8_t>(I.Disp + 1)); // misalign
      break;
    case X86Op::MovdStore:
    case X86Op::MovqStore:
    case X86Op::MovdLoad:
    case X86Op::MovqLoad:
    case X86Op::GprLoad:
      Mutate(DispByte, static_cast<uint8_t>(I.Disp + 1)); // misalign
      Mutate(DispByte, static_cast<uint8_t>(I.Disp + Lane)); // shift slot
      break;
    case X86Op::XorRR: // break the zero idiom (reg != rm)
      Mutate(DispByte, static_cast<uint8_t>(Code.Bytes[DispByte] ^ 1));
      break;
    default:
      break;
    }
    // Pair GPR forms: dropping REX.W flips the lane width.
    if (I.W && Code.Bytes[I.Offset] >= 0x48 && Code.Bytes[I.Offset] <= 0x4F)
      Mutate(I.Offset, static_cast<uint8_t>(Code.Bytes[I.Offset] & ~0x08));
  }
  return Mutants;
}

TEST(ValidateMutation, RejectsEverySemanticMutant) {
  size_t Total = 0, Rejected = 0;
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::MinMax})
    for (unsigned N : {3u, 4u}) {
      Program P = Kind == MachineKind::Cmov ? sortingNetworkCmov(N)
                                            : sortingNetworkMinMax(N);
      for (const EmissionPath &Path : emitAllPaths(Kind, N, P)) {
        ASSERT_EQ(Path.Code.Status, EmitStatus::Ok);
        for (const std::vector<uint8_t> &Mutant :
             semanticMutants(Path.Code, Path.PairLanes)) {
          ++Total;
          ValidationReport R =
              validateKernelBytes(Mutant.data(), Mutant.size(), Kind, N, P,
                                  GoalSpec::sort(), Path.PairLanes);
          if (R.Applicable && !R.Ok)
            ++Rejected;
          else
            ADD_FAILURE() << Path.Name << " " << (Kind == MachineKind::Cmov
                                                      ? "cmov"
                                                      : "minmax")
                          << " n=" << N << " mutant accepted";
        }
      }
    }
  EXPECT_GE(Total, 100u) << "mutation corpus too small to pin anything";
  EXPECT_EQ(Rejected, Total);
}

//===----------------------------------------------------------------------===//
// Concurrency smoke (the tsan_validate ctest entry)
//===----------------------------------------------------------------------===//

TEST(ValidateThreads, ConcurrentValidationSmoke) {
  // The validator keeps all state on the stack, so concurrent calls over
  // shared Program inputs must be race-free; tsan checks the claim.
  const Program Cmov = sortingNetworkCmov(3);
  const Program MinMax = sortingNetworkMinMax(3);
  std::vector<std::thread> Workers;
  std::atomic<int> Failures{0};
  for (int T = 0; T != 4; ++T)
    Workers.emplace_back([&] {
      for (int I = 0; I != 8; ++I) {
        if (!validateJitKernel(MachineKind::Cmov, 3, Cmov).Ok)
          ++Failures;
        if (!validateJitPairKernel(MachineKind::MinMax, 3, MinMax).Ok)
          ++Failures;
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace
