//===- tests/PipelineTest.cpp - Scheduler and throughput-model tests ---------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Pipeline.h"

#include "kernels/ReferenceKernels.h"
#include "search/Search.h"
#include "support/Permutations.h"
#include "support/Rng.h"
#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(Pipeline, SerialChainIsLatencyBound) {
  Program Serial = {Instr{Opcode::Mov, 1, 0}, Instr{Opcode::Mov, 2, 1},
                    Instr{Opcode::Mov, 3, 2}, Instr{Opcode::Mov, 4, 3}};
  ThroughputEstimate E = estimateThroughput(Serial);
  EXPECT_DOUBLE_EQ(E.LatencyBound, 4.0);
  EXPECT_DOUBLE_EQ(E.Cycles, 4.0) << "latency dominates a serial chain";
}

TEST(Pipeline, IndependentOpsAreThroughputBound) {
  // 8 pairwise-independent movs: latency 1, front end 8/4 = 2, ports 8/3.
  Program P;
  for (unsigned I = 0; I != 4; ++I) {
    P.push_back(Instr{Opcode::Mov, static_cast<uint8_t>(2 * I + 1),
                      static_cast<uint8_t>(2 * I)});
  }
  // Reuse disjoint registers in reverse to keep independence.
  ThroughputEstimate E = estimateThroughput(P);
  EXPECT_DOUBLE_EQ(E.LatencyBound, 1.0);
  EXPECT_GT(E.Cycles, 1.0) << "front end / ports bind instead";
}

TEST(Pipeline, EmptyProgram) {
  ThroughputEstimate E = estimateThroughput({});
  EXPECT_DOUBLE_EQ(E.Cycles, 0.0);
}

TEST(Pipeline, CmovLatencyKnobMatters) {
  Program P = {Instr{Opcode::Cmp, 0, 1}, Instr{Opcode::CMovL, 0, 1},
               Instr{Opcode::Cmp, 0, 1}, Instr{Opcode::CMovL, 0, 1}};
  PipelineModel Fast, Slow;
  Slow.CmovLatency = 2;
  EXPECT_LT(estimateThroughput(P, Fast).LatencyBound,
            estimateThroughput(P, Slow).LatencyBound);
}

TEST(Pipeline, DependenceEdgesCoverHazards) {
  // raw: 1 reads r1 written by 0; war: 2 writes r0 read by 0 and 1;
  // flags couple cmp and cmov.
  Program P = {Instr{Opcode::Mov, 1, 0}, Instr{Opcode::Cmp, 1, 2},
               Instr{Opcode::CMovL, 0, 2}};
  std::vector<std::vector<unsigned>> Edges = dependenceEdges(P);
  ASSERT_EQ(Edges.size(), 3u);
  EXPECT_TRUE(Edges[0].empty());
  // cmp reads r1 written by mov.
  ASSERT_EQ(Edges[1].size(), 1u);
  EXPECT_EQ(Edges[1][0], 0u);
  // cmovl reads flags written by cmp and writes r0 read by mov (WAR).
  EXPECT_EQ(Edges[2].size(), 2u);
}

TEST(Pipeline, SchedulePreservesSemantics) {
  // The scheduler must keep every kernel correct; sweep synthesized and
  // reference kernels.
  for (unsigned N = 2; N <= 4; ++N) {
    Machine M(MachineKind::Cmov, N);
    Program P = sortingNetworkCmov(N);
    Program S = scheduleProgram(P);
    ASSERT_EQ(S.size(), P.size());
    EXPECT_TRUE(isCorrectKernel(M, S)) << "n=" << N;
    Machine MM(MachineKind::MinMax, N);
    Program Q = sortingNetworkMinMax(N);
    EXPECT_TRUE(isCorrectKernel(MM, scheduleProgram(Q))) << "n=" << N;
  }
}

TEST(Pipeline, SchedulePreservesRandomProgramBehaviour) {
  // Stronger: arbitrary programs keep their exact input/output function.
  Machine M(MachineKind::Cmov, 3);
  Rng R(77);
  const std::vector<Instr> &Alphabet = M.instructions();
  for (int Trial = 0; Trial != 100; ++Trial) {
    Program P;
    for (int I = 0; I != 10; ++I)
      P.push_back(Alphabet[R.below(Alphabet.size())]);
    Program S = scheduleProgram(P);
    for (const std::vector<int> &Perm : allPermutations(3)) {
      std::vector<long long> Wide(Perm.begin(), Perm.end());
      EXPECT_EQ(runOnValues(M, P, Wide), runOnValues(M, S, Wide))
          << toString(P, 3) << "--->\n"
          << toString(S, 3);
    }
  }
}

TEST(Pipeline, ScheduleNeverWorsensLatencyBound) {
  Machine M(MachineKind::Cmov, 4);
  Rng R(78);
  const std::vector<Instr> &Alphabet = M.instructions();
  for (int Trial = 0; Trial != 60; ++Trial) {
    Program P;
    for (int I = 0; I != 14; ++I)
      P.push_back(Alphabet[R.below(Alphabet.size())]);
    EXPECT_LE(estimateThroughput(scheduleProgram(P)).LatencyBound,
              estimateThroughput(P).LatencyBound);
  }
}

TEST(Pipeline, SynthesizedKernelBeatsNetworkOnEstimate) {
  // The paper's uiCA claim, on the model: the synthesized min/max kernel
  // has at most the network's estimated cycles with fewer instructions.
  ThroughputEstimate Synth = estimateThroughput(paperSynthMinMax3());
  ThroughputEstimate Network = estimateThroughput(sortingNetworkMinMax(3));
  EXPECT_LE(Synth.Cycles, Network.Cycles);
}

} // namespace
