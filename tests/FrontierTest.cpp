//===- tests/FrontierTest.cpp - Compressed/spillable frontier tests --------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The storage tiers under the layered engine's retired levels
// (state/RowCodec.h, state/StateStore.h): the delta/varint block codec
// must round-trip any uint32 sequence and reject corrupt streams, sealing
// an arena must preserve every span bit-for-bit through the decode cache
// (including spans that straddle block boundaries), and the spill tier
// must keep reads correct while the bytes live in an unlinked temp file.
// Search-level equivalence (the 5602 pins) lives in
// EngineEquivalenceTest.cpp; this file pins the layer below it.
//
//===----------------------------------------------------------------------===//

#include "state/RowCodec.h"
#include "state/StateStore.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include <unistd.h>

using namespace sks;

namespace {

/// A corpus that looks like real arena content: concatenated sorted runs
/// ("rows" of canonical states) over the full uint32 range.
std::vector<uint32_t> canonicalCorpus(size_t Words, uint64_t Seed) {
  Rng R(Seed);
  std::vector<uint32_t> Out;
  Out.reserve(Words);
  while (Out.size() < Words) {
    size_t Run = std::min<size_t>(1 + R.below(120), Words - Out.size());
    std::vector<uint32_t> Row(Run);
    for (uint32_t &W : Row)
      W = static_cast<uint32_t>(R.next());
    std::sort(Row.begin(), Row.end());
    Out.insert(Out.end(), Row.begin(), Row.end());
  }
  return Out;
}

std::vector<uint32_t> roundTrip(const std::vector<uint32_t> &Words) {
  std::vector<uint8_t> Blob;
  encodeRowBlock(Words.data(), Words.size(), Blob);
  std::vector<uint32_t> Back(Words.size());
  EXPECT_TRUE(
      decodeRowBlock(Blob.data(), Blob.size(), Back.data(), Back.size()));
  return Back;
}

TEST(RowCodec, RoundTripsCanonicalCorpora) {
  // Randomized widths, including zero, exact multiples of 4, and the
  // block size itself.
  for (size_t Words : {0u, 1u, 3u, 4u, 8u, 24u, 120u, 1000u, 4096u}) {
    std::vector<uint32_t> In = canonicalCorpus(Words, 7 * Words + 1);
    EXPECT_EQ(roundTrip(In), In) << Words << " words";
  }
  Rng R(42);
  for (int Rep = 0; Rep != 50; ++Rep) {
    std::vector<uint32_t> In = canonicalCorpus(R.below(5000), R.next());
    EXPECT_EQ(roundTrip(In), In);
  }
}

TEST(RowCodec, RoundTripsExtremeDeltas) {
  // Alternating 0 / UINT32_MAX maximizes the zigzag magnitude; the wrap
  // must survive in both directions.
  std::vector<uint32_t> In;
  for (int I = 0; I != 1000; ++I)
    In.push_back(I % 2 ? 0xffffffffu : 0u);
  EXPECT_EQ(roundTrip(In), In);

  // Constant runs encode as zero deltas.
  In.assign(4096, 0xdeadbeefu);
  EXPECT_EQ(roundTrip(In), In);

  // Pure random (no structure) — the codec must be lossless even when it
  // cannot compress.
  Rng R(99);
  In.clear();
  for (int I = 0; I != 4096; ++I)
    In.push_back(static_cast<uint32_t>(R.next()));
  EXPECT_EQ(roundTrip(In), In);
}

TEST(RowCodec, CompressesSortedRuns) {
  // The reason the format exists: sorted runs of bounded-entropy words
  // (real canonical rows pack small per-lane values, not uniform 32-bit
  // noise) must shrink well below the flat 4 bytes/word — small ascending
  // deltas take 1-2 varint bytes.
  Rng R(5);
  std::vector<uint32_t> In;
  while (In.size() < 4096) {
    size_t Run = std::min<size_t>(1 + R.below(120), 4096 - In.size());
    std::vector<uint32_t> Row(Run);
    for (uint32_t &W : Row)
      W = static_cast<uint32_t>(R.below(1u << 12));
    std::sort(Row.begin(), Row.end());
    In.insert(In.end(), Row.begin(), Row.end());
  }
  std::vector<uint8_t> Blob;
  encodeRowBlock(In.data(), In.size(), Blob);
  EXPECT_LT(Blob.size(), In.size() * 2);
  EXPECT_LE(Blob.size(), maxEncodedRowBytes(In.size()));
}

TEST(RowCodec, RejectsCorruptStreams) {
  std::vector<uint32_t> In = canonicalCorpus(256, 11);
  std::vector<uint8_t> Blob;
  encodeRowBlock(In.data(), In.size(), Blob);
  std::vector<uint32_t> Out(In.size());

  // Truncations at every prefix length must fail, never read past the
  // end, and never loop.
  for (size_t Cut = 0; Cut != Blob.size(); ++Cut)
    EXPECT_FALSE(decodeRowBlock(Blob.data(), Cut, Out.data(), Out.size()))
        << "truncated to " << Cut;

  // Trailing garbage: all words decoded but bytes remain.
  std::vector<uint8_t> Long = Blob;
  Long.push_back(0x00);
  EXPECT_FALSE(decodeRowBlock(Long.data(), Long.size(), Out.data(),
                              Out.size()));

  // An overlong varint (five continuation bytes) must be rejected.
  const uint8_t Overlong[] = {0xff, 0xff, 0xff, 0xff, 0xff};
  uint32_t One;
  EXPECT_FALSE(decodeRowBlock(Overlong, sizeof(Overlong), &One, 1));

  // A fifth byte with payload above 2^32 must be rejected too.
  const uint8_t Overflow[] = {0xff, 0xff, 0xff, 0xff, 0x10};
  EXPECT_FALSE(decodeRowBlock(Overflow, sizeof(Overflow), &One, 1));
}

TEST(RowArenaTier, SealPreservesEverySpan) {
  // Fill an arena with multiple blocks' worth of rows, seal it, and read
  // every span back through the StateStore decode layer.
  StateStore Store;
  std::vector<uint32_t> All = canonicalCorpus(3 * RowArena::kBlockWords + 700,
                                              123);
  std::vector<RowSpan> Spans;
  Rng R(17);
  size_t Pos = 0;
  while (Pos < All.size()) {
    uint32_t Len = static_cast<uint32_t>(
        std::min<size_t>(1 + R.below(200), All.size() - Pos));
    Spans.push_back(Store.arena(0).append(All.data() + Pos, Len));
    Pos += Len;
  }

  Store.configureFrontier({true, "", 0});
  Store.retireLevel(0);
  ASSERT_TRUE(Store.arena(0).sealed());
  EXPECT_GT(Store.arena(0).blockCount(), 3u);
  EXPECT_GT(Store.frontierCounters().CompressedBytes, 0u);
  EXPECT_EQ(Store.frontierCounters().CompressedRawBytes, All.size() * 4);

  DecodeCache Cache;
  for (const RowSpan &S : Spans) {
    const uint32_t *Rows = Store.rows(0, S, Cache);
    EXPECT_TRUE(std::equal(Rows, Rows + S.Len, All.data() + S.Offset));
    EXPECT_TRUE(Store.rowsEqual(0, S, All.data() + S.Offset, S.Len, Cache));
    // And a mismatching probe must fail: flip one word.
    if (S.Len > 0) {
      std::vector<uint32_t> Other(All.data() + S.Offset,
                                  All.data() + S.Offset + S.Len);
      Other[S.Len / 2] ^= 1;
      EXPECT_FALSE(Store.rowsEqual(0, S, Other.data(), S.Len, Cache));
      EXPECT_FALSE(
          Store.rowsEqual(0, S, All.data() + S.Offset, S.Len - 1, Cache));
    }
  }
  EXPECT_GT(Cache.BlocksDecoded, 0u);
}

TEST(RowArenaTier, BlockStraddlingSpansStitch) {
  // Spans deliberately placed across the kBlockWords boundary.
  StateStore Store;
  std::vector<uint32_t> All = canonicalCorpus(2 * RowArena::kBlockWords, 9);
  Store.arena(0).append(All.data(), static_cast<uint32_t>(All.size()));
  Store.configureFrontier({true, "", 0});
  Store.retireLevel(0);

  DecodeCache Cache;
  for (uint32_t Off :
       {RowArena::kBlockWords - 150u, RowArena::kBlockWords - 1u}) {
    for (uint32_t Len : {2u, 150u, 300u}) {
      RowSpan S{Off, Len};
      const uint32_t *Rows = Store.rows(0, S, Cache);
      EXPECT_TRUE(std::equal(Rows, Rows + Len, All.data() + Off))
          << "offset " << Off << " len " << Len;
    }
  }
}

TEST(RowArenaTier, SpillRoundTripsThroughTheFile) {
  std::string Dir = ::testing::TempDir();
  // Probe for writability so the suite degrades to a skip on a read-only
  // filesystem instead of failing.
  {
    std::string Probe = Dir + "/sks-frontier-probe";
    std::FILE *F = std::fopen(Probe.c_str(), "w");
    if (!F)
      GTEST_SKIP() << "temp dir not writable: " << Dir;
    std::fclose(F);
    std::remove(Probe.c_str());
  }

  StateStore Store;
  std::vector<uint32_t> All = canonicalCorpus(3 * RowArena::kBlockWords, 31);
  Store.arena(0).append(All.data(), static_cast<uint32_t>(All.size()));
  const size_t FlatBytes = Store.bytesUsed();

  Store.configureFrontier({true, Dir, 0});
  Store.retireLevel(0);
  ASSERT_TRUE(Store.arena(0).sealed());
  ASSERT_TRUE(Store.arena(0).spilled());
  EXPECT_GT(Store.frontierCounters().SpilledBytes, 0u);
  EXPECT_EQ(Store.frontierCounters().SpilledLevels, 1u);
  EXPECT_EQ(Store.frontierCounters().SpillFailures, 0u);
  // The blob left memory: resident bytes collapse to the block directory.
  EXPECT_LT(Store.bytesUsed(), FlatBytes / 4);

  DecodeCache Cache;
  Rng R(3);
  for (int Rep = 0; Rep != 200; ++Rep) {
    uint32_t Off = static_cast<uint32_t>(R.below(All.size() - 1));
    uint32_t Len = static_cast<uint32_t>(
        std::min<size_t>(1 + R.below(300), All.size() - Off));
    const uint32_t *Rows = Store.rows(0, RowSpan{Off, Len}, Cache);
    ASSERT_TRUE(std::equal(Rows, Rows + Len, All.data() + Off));
  }
}

TEST(RowArenaTier, SpillRespectsTheResidentThreshold) {
  std::string Dir = ::testing::TempDir();
  {
    std::string Probe = Dir + "/sks-frontier-probe2";
    std::FILE *F = std::fopen(Probe.c_str(), "w");
    if (!F)
      GTEST_SKIP() << "temp dir not writable: " << Dir;
    std::fclose(F);
    std::remove(Probe.c_str());
  }

  // Three sealed levels under a threshold that fits roughly one of them:
  // the oldest levels go to disk first, the newest stays resident.
  StateStore Store;
  std::vector<std::vector<uint32_t>> Levels;
  for (unsigned L = 0; L != 3; ++L) {
    Levels.push_back(canonicalCorpus(RowArena::kBlockWords, 100 + L));
    Store.arena(L).append(Levels[L].data(),
                          static_cast<uint32_t>(Levels[L].size()));
  }
  size_t MaxCompressed = 0;
  for (const std::vector<uint32_t> &L : Levels) {
    std::vector<uint8_t> Blob;
    encodeRowBlock(L.data(), L.size(), Blob);
    MaxCompressed = std::max(MaxCompressed, Blob.size());
  }
  FrontierConfig Cfg{true, Dir, MaxCompressed + 16};
  Store.configureFrontier(Cfg);
  for (unsigned L = 0; L != 3; ++L)
    Store.retireLevel(L);

  EXPECT_TRUE(Store.arena(0).spilled());
  EXPECT_TRUE(Store.arena(1).spilled());
  EXPECT_FALSE(Store.arena(2).spilled());

  DecodeCache Cache;
  for (unsigned L = 0; L != 3; ++L) {
    RowSpan S{0, static_cast<uint32_t>(Levels[L].size())};
    EXPECT_TRUE(Store.rowsEqual(L, S, Levels[L].data(), S.Len, Cache)) << L;
  }
}

TEST(RowArenaTier, UnwritableSpillDirStaysResidentAndReadable) {
  StateStore Store;
  std::vector<uint32_t> All = canonicalCorpus(1000, 55);
  Store.arena(0).append(All.data(), static_cast<uint32_t>(All.size()));
  Store.configureFrontier({true, "/nonexistent/sks-no-such-dir", 0});
  Store.retireLevel(0);
  ASSERT_TRUE(Store.arena(0).sealed());
  EXPECT_FALSE(Store.arena(0).spilled());
  EXPECT_GT(Store.frontierCounters().SpillFailures, 0u);
  EXPECT_EQ(Store.frontierCounters().SpilledBytes, 0u);

  DecodeCache Cache;
  RowSpan S{0, static_cast<uint32_t>(All.size())};
  EXPECT_TRUE(Store.rowsEqual(0, S, All.data(), S.Len, Cache));
}

TEST(RowArenaTier, RetireIsIdempotentAndOffByDefault) {
  // Without Compress, retireLevel must be a no-op (the best-first engine
  // and compression-off runs rely on flat reads staying legal).
  StateStore Plain;
  std::vector<uint32_t> All = canonicalCorpus(100, 77);
  RowSpan S = Plain.arena(0).append(All.data(),
                                    static_cast<uint32_t>(All.size()));
  Plain.retireLevel(0);
  EXPECT_FALSE(Plain.arena(0).sealed());
  EXPECT_TRUE(Plain.arena(0).equals(S, All.data(), S.Len));

  StateStore Store;
  Store.arena(0).append(All.data(), static_cast<uint32_t>(All.size()));
  Store.configureFrontier({true, "", 0});
  Store.retireLevel(0);
  const size_t Sealed = Store.frontierCounters().SealedLevels;
  Store.retireLevel(0); // Second retire: no double count, no re-seal.
  EXPECT_EQ(Store.frontierCounters().SealedLevels, Sealed);
  Store.retireLevel(99); // Beyond the arena vector: ignored.
}

} // namespace
