//===- tests/CodegenTest.cpp - Codegen internals tests -----------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/AsmEmitter.h"
#include "codegen/Jit.h"

#include "kernels/ReferenceKernels.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(AsmEmitter, RegisterNames) {
  EXPECT_EQ(x86RegName(MachineKind::Cmov, 0), "eax");
  EXPECT_EQ(x86RegName(MachineKind::Cmov, 3), "esi");
  EXPECT_EQ(x86RegName(MachineKind::Cmov, 4), "r8d");
  EXPECT_EQ(x86RegName(MachineKind::Cmov, 7), "r11d");
  EXPECT_EQ(x86RegName(MachineKind::MinMax, 0), "xmm0");
  EXPECT_EQ(x86RegName(MachineKind::MinMax, 7), "xmm7");
}

TEST(AsmEmitter, ExtendedRegistersAppearForN6) {
  // n = 6 uses 7 model registers, reaching into r8d..r10d.
  std::string Text =
      emitAsmText(MachineKind::Cmov, 6, sortingNetworkCmov(6), true);
  EXPECT_NE(Text.find("r8d"), std::string::npos);
  EXPECT_NE(Text.find("r10d"), std::string::npos);
  EXPECT_NE(Text.find("[rdi + 20]"), std::string::npos) << "6th element";
}

TEST(Jit, CodeBytesAreDeterministic) {
  if (!jitSupported(MachineKind::Cmov))
    GTEST_SKIP();
  auto A = JitKernel::compile(MachineKind::Cmov, 3, paperSynthCmov3());
  auto B = JitKernel::compile(MachineKind::Cmov, 3, paperSynthCmov3());
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  ASSERT_EQ(A->codeSize(), B->codeSize());
  EXPECT_EQ(std::memcmp(reinterpret_cast<const void *>(A->entry()),
                        reinterpret_cast<const void *>(B->entry()),
                        A->codeSize()),
            0);
}

TEST(Jit, PrologueInitializesScratchAndFlags) {
  if (!jitSupported(MachineKind::Cmov))
    GTEST_SKIP();
  // The first bytes must be "xor esi, esi" (31 F6): the scratch register
  // zeroing that also normalizes the host flags (see Jit.cpp).
  auto Kernel = JitKernel::compile(MachineKind::Cmov, 3, paperSynthCmov3());
  ASSERT_NE(Kernel, nullptr);
  const uint8_t *Code = reinterpret_cast<const uint8_t *>(Kernel->entry());
  EXPECT_EQ(Code[0], 0x31);
  EXPECT_EQ(Code[1], 0xF6);
  // And the last byte must be ret.
  EXPECT_EQ(Code[Kernel->codeSize() - 1], 0xC3);
}

TEST(Jit, LongerKernelsProduceMoreCode) {
  if (!jitSupported(MachineKind::Cmov))
    GTEST_SKIP();
  auto Short = JitKernel::compile(MachineKind::Cmov, 3, paperSynthCmov3());
  auto Long = JitKernel::compile(MachineKind::Cmov, 5, sortingNetworkCmov(5));
  ASSERT_NE(Short, nullptr);
  ASSERT_NE(Long, nullptr);
  EXPECT_LT(Short->codeSize(), Long->codeSize());
}

TEST(Jit, HybridIsInterpreterOnly) {
  EXPECT_FALSE(jitSupported(MachineKind::Hybrid));
  EXPECT_EQ(JitKernel::compile(MachineKind::Hybrid, 3, sortingNetworkCmov(3)),
            nullptr);
}

TEST(Jit, InterpreterHandlesHybridKernels) {
  // The hybrid kernel from MachineTest (transfers + min/max CAS) must sort
  // arbitrary ints through the interpreter.
  Program P;
  auto Mov = [](unsigned D, unsigned S) {
    return Instr{Opcode::Mov, static_cast<uint8_t>(D),
                 static_cast<uint8_t>(S)};
  };
  for (unsigned I = 0; I != 3; ++I)
    P.push_back(Mov(4 + I, I));
  for (auto [A, B] : networkPairs(3)) {
    Program Cas = casMinMax(4 + A, 4 + B, 7);
    P.insert(P.end(), Cas.begin(), Cas.end());
  }
  for (unsigned I = 0; I != 3; ++I)
    P.push_back(Mov(I, 4 + I));
  int32_t Data[3] = {55, -3, 12};
  interpretKernel(MachineKind::Hybrid, 3, P, Data);
  EXPECT_EQ(Data[0], -3);
  EXPECT_EQ(Data[1], 12);
  EXPECT_EQ(Data[2], 55);
}

TEST(AsmEmitter, BareListingsOmitMemoryOps) {
  std::string Bare =
      emitAsmText(MachineKind::Cmov, 4, sortingNetworkCmov(4), false);
  EXPECT_EQ(Bare.find("rdi"), std::string::npos);
  EXPECT_EQ(Bare.find("ret"), std::string::npos);
}

} // namespace
