//===- tests/EngineEquivalenceTest.cpp - Execution-mode equivalence --------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The layered engine has three execution modes — sequential node-major,
// thread-pool parallel, and instruction-major batch — that must be
// semantically indistinguishable: the sharded merge (state/StateStore.h)
// folds per-shard sums and mins, both order-independent, so the solution
// DAG, the exact solution count, and the reconstructed kernel set are
// identical for any thread count. These tests pin that equivalence on the
// full n=3 all-solutions experiment (5602 optimal kernels) and on the
// min/max machine.
//
//===----------------------------------------------------------------------===//

#include "isa/Instr.h"
#include "search/Search.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

using namespace sks;

namespace {

struct Mode {
  const char *Name;
  unsigned NumThreads;
  bool Batch;
};

constexpr Mode kModes[] = {
    {"sequential", 1, false},
    {"threads4", 4, false},
    {"batch", 1, true},
    {"batch+threads4", 4, true}, // Batch expansion, parallel merge.
};

SearchOptions findAllConfig(MachineKind Kind, unsigned N, const Mode &Mo) {
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.UseViability = true;
  Opts.Cut = CutConfig::none();
  Opts.FindAll = true;
  Opts.MaxLength = networkUpperBound(Kind, N);
  Opts.NumThreads = Mo.NumThreads;
  Opts.BatchExpansion = Mo.Batch;
  return Opts;
}

std::set<std::string> solutionSet(const Machine &M, const SearchResult &R) {
  std::set<std::string> Set;
  for (const Program &P : R.Solutions)
    Set.insert(toString(P, M.numData()));
  return Set;
}

TEST(EngineEquivalence, CmovN3AllModesAgreeOn5602Solutions) {
  Machine M(MachineKind::Cmov, 3);
  std::set<std::string> Reference;
  for (const Mode &Mo : kModes) {
    SearchResult R = synthesize(M, findAllConfig(MachineKind::Cmov, 3, Mo));
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 11u) << Mo.Name;
    EXPECT_EQ(R.SolutionCount, 5602u)
        << Mo.Name << ": paper section 5.3's exact count";
    EXPECT_EQ(R.Solutions.size(), 5602u) << Mo.Name;
    EXPECT_GT(R.Stats.PeakStateBytes, 0u) << Mo.Name;
    std::set<std::string> Set = solutionSet(M, R);
    EXPECT_EQ(Set.size(), 5602u) << Mo.Name << ": solutions are distinct";
    if (Reference.empty())
      Reference = std::move(Set);
    else
      EXPECT_EQ(Set, Reference)
          << Mo.Name << ": reconstructed kernel set differs from sequential";
  }
}

TEST(EngineEquivalence, MinMaxN3AllModesAgree) {
  Machine M(MachineKind::MinMax, 3);
  std::set<std::string> Reference;
  uint64_t ReferenceCount = 0;
  for (const Mode &Mo : kModes) {
    SearchResult R = synthesize(M, findAllConfig(MachineKind::MinMax, 3, Mo));
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 8u)
        << Mo.Name << ": paper section 5.4's min/max n=3 length";
    EXPECT_EQ(R.Solutions.size(), R.SolutionCount) << Mo.Name;
    std::set<std::string> Set = solutionSet(M, R);
    EXPECT_EQ(Set.size(), R.SolutionCount) << Mo.Name;
    if (Reference.empty()) {
      Reference = std::move(Set);
      ReferenceCount = R.SolutionCount;
    } else {
      EXPECT_EQ(R.SolutionCount, ReferenceCount) << Mo.Name;
      EXPECT_EQ(Set, Reference) << Mo.Name;
    }
  }
}

TEST(EngineEquivalence, ProfiledRunMatchesAndFillsStageCounters) {
  // ProfilePipeline only adds timing; the search must be bit-identical.
  // Run the full 5602-solution config with the profile on (parallel, so
  // the worker-stat fold of the nano counters is exercised too) and check
  // both the pinned results and that every stage actually accumulated.
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, kModes[1]);
  Opts.ProfilePipeline = true;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 11u);
  EXPECT_EQ(R.SolutionCount, 5602u);
  EXPECT_EQ(solutionSet(M, R).size(), 5602u);
  EXPECT_GT(R.Stats.ApplyNanos, 0u);
  EXPECT_GT(R.Stats.CanonNanos, 0u);
  EXPECT_GT(R.Stats.ViabilityNanos, 0u);
  EXPECT_GT(R.Stats.MergeNanos, 0u);

  // And with the profile off (the default), the counters stay zero.
  SearchResult Off =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[1]));
  EXPECT_EQ(Off.Stats.ApplyNanos, 0u);
  EXPECT_EQ(Off.Stats.CanonNanos, 0u);
  EXPECT_EQ(Off.Stats.ViabilityNanos, 0u);
  EXPECT_EQ(Off.Stats.MergeNanos, 0u);
}

TEST(EngineEquivalence, StatsAgreeAcrossThreadCounts) {
  // The merge is deterministic, so the dedup/prune counters — not just the
  // results — must match between one and four threads (batch expansion
  // generates candidates in a different order, so only the node-major
  // modes are compared here).
  Machine M(MachineKind::Cmov, 3);
  SearchResult Seq =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[0]));
  SearchResult Par =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[1]));
  EXPECT_EQ(Seq.Stats.StatesExpanded, Par.Stats.StatesExpanded);
  EXPECT_EQ(Seq.Stats.StatesGenerated, Par.Stats.StatesGenerated);
  EXPECT_EQ(Seq.Stats.DedupHits, Par.Stats.DedupHits);
  EXPECT_EQ(Seq.Stats.ViabilityPruned, Par.Stats.ViabilityPruned);
  EXPECT_EQ(Seq.Stats.CutStates, Par.Stats.CutStates);
}

} // namespace
