//===- tests/EngineEquivalenceTest.cpp - Execution-mode equivalence --------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The layered engine has three execution modes — sequential node-major,
// thread-pool parallel, and instruction-major batch — that must be
// semantically indistinguishable: the sharded merge (state/StateStore.h)
// folds per-shard sums and mins, both order-independent, so the solution
// DAG, the exact solution count, and the reconstructed kernel set are
// identical for any thread count. These tests pin that equivalence on the
// full n=3 all-solutions experiment (5602 optimal kernels) and on the
// min/max machine.
//
//===----------------------------------------------------------------------===//

#include "isa/Instr.h"
#include "search/Search.h"
#include "verify/Verify.h"

#include <algorithm>
#include <cstdio>
#include <gtest/gtest.h>
#include <set>
#include <string>

using namespace sks;

namespace {

struct Mode {
  const char *Name;
  unsigned NumThreads;
  bool Batch;
};

constexpr Mode kModes[] = {
    {"sequential", 1, false},
    {"threads4", 4, false},
    {"batch", 1, true},
    {"batch+threads4", 4, true}, // Batch expansion, parallel merge.
};

SearchOptions findAllConfig(MachineKind Kind, unsigned N, const Mode &Mo) {
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.UseViability = true;
  Opts.Cut = CutConfig::none();
  Opts.FindAll = true;
  Opts.MaxLength = networkUpperBound(Kind, N);
  Opts.NumThreads = Mo.NumThreads;
  Opts.BatchExpansion = Mo.Batch;
  return Opts;
}

std::set<std::string> solutionSet(const Machine &M, const SearchResult &R) {
  std::set<std::string> Set;
  for (const Program &P : R.Solutions)
    Set.insert(toString(P, M.numData()));
  return Set;
}

TEST(EngineEquivalence, CmovN3AllModesAgreeOn5602Solutions) {
  Machine M(MachineKind::Cmov, 3);
  std::set<std::string> Reference;
  for (const Mode &Mo : kModes) {
    SearchResult R = synthesize(M, findAllConfig(MachineKind::Cmov, 3, Mo));
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 11u) << Mo.Name;
    EXPECT_EQ(R.SolutionCount, 5602u)
        << Mo.Name << ": paper section 5.3's exact count";
    EXPECT_EQ(R.Solutions.size(), 5602u) << Mo.Name;
    EXPECT_GT(R.Stats.PeakStateBytes, 0u) << Mo.Name;
    std::set<std::string> Set = solutionSet(M, R);
    EXPECT_EQ(Set.size(), 5602u) << Mo.Name << ": solutions are distinct";
    if (Reference.empty())
      Reference = std::move(Set);
    else
      EXPECT_EQ(Set, Reference)
          << Mo.Name << ": reconstructed kernel set differs from sequential";
  }
}

TEST(EngineEquivalence, MinMaxN3AllModesAgree) {
  Machine M(MachineKind::MinMax, 3);
  std::set<std::string> Reference;
  uint64_t ReferenceCount = 0;
  for (const Mode &Mo : kModes) {
    SearchResult R = synthesize(M, findAllConfig(MachineKind::MinMax, 3, Mo));
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 8u)
        << Mo.Name << ": paper section 5.4's min/max n=3 length";
    EXPECT_EQ(R.Solutions.size(), R.SolutionCount) << Mo.Name;
    std::set<std::string> Set = solutionSet(M, R);
    EXPECT_EQ(Set.size(), R.SolutionCount) << Mo.Name;
    if (Reference.empty()) {
      Reference = std::move(Set);
      ReferenceCount = R.SolutionCount;
    } else {
      EXPECT_EQ(R.SolutionCount, ReferenceCount) << Mo.Name;
      EXPECT_EQ(Set, Reference) << Mo.Name;
    }
  }
}

TEST(EngineEquivalence, ProfiledRunMatchesAndFillsStageCounters) {
  // ProfilePipeline only adds timing; the search must be bit-identical.
  // Run the full 5602-solution config with the profile on (parallel, so
  // the worker-stat fold of the nano counters is exercised too) and check
  // both the pinned results and that every stage actually accumulated.
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, kModes[1]);
  Opts.ProfilePipeline = true;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 11u);
  EXPECT_EQ(R.SolutionCount, 5602u);
  EXPECT_EQ(solutionSet(M, R).size(), 5602u);
  EXPECT_GT(R.Stats.ApplyNanos, 0u);
  EXPECT_GT(R.Stats.CanonNanos, 0u);
  EXPECT_GT(R.Stats.ViabilityNanos, 0u);
  EXPECT_GT(R.Stats.MergeNanos, 0u);

  // And with the profile off (the default), the counters stay zero.
  SearchResult Off =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[1]));
  EXPECT_EQ(Off.Stats.ApplyNanos, 0u);
  EXPECT_EQ(Off.Stats.CanonNanos, 0u);
  EXPECT_EQ(Off.Stats.ViabilityNanos, 0u);
  EXPECT_EQ(Off.Stats.MergeNanos, 0u);
}

TEST(EngineEquivalence, StatsAgreeAcrossThreadCounts) {
  // The merge is deterministic, so the dedup/prune counters — not just the
  // results — must match between one and four threads (batch expansion
  // generates candidates in a different order, so only the node-major
  // modes are compared here).
  Machine M(MachineKind::Cmov, 3);
  SearchResult Seq =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[0]));
  SearchResult Par =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[1]));
  EXPECT_EQ(Seq.Stats.StatesExpanded, Par.Stats.StatesExpanded);
  EXPECT_EQ(Seq.Stats.StatesGenerated, Par.Stats.StatesGenerated);
  EXPECT_EQ(Seq.Stats.DedupHits, Par.Stats.DedupHits);
  EXPECT_EQ(Seq.Stats.ViabilityPruned, Par.Stats.ViabilityPruned);
  EXPECT_EQ(Seq.Stats.CutStates, Par.Stats.CutStates);
}

TEST(EngineEquivalence, SemanticPrunePreservesThe5602SolutionDag) {
  // The soundness pin of the order-domain prune (SearchOptions::
  // SemanticPrune): on the full n=3 all-solutions run the pruned search
  // must reproduce the exact solution set, count, length, and per-level
  // state counts of the unpruned baseline — the prune only refuses
  // expansions that dedup or minimality would discard anyway. Checked
  // across every execution mode, and composed with SyntacticPrune.
  Machine M(MachineKind::Cmov, 3);
  SearchResult Baseline =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[0]));
  ASSERT_TRUE(Baseline.Found);
  ASSERT_EQ(Baseline.SolutionCount, 5602u);
  const std::set<std::string> Reference = solutionSet(M, Baseline);
  ASSERT_FALSE(Baseline.Stats.LevelStates.empty());

  std::vector<size_t> PrunedLevels;
  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.SemanticPrune = true;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 11u) << Mo.Name;
    EXPECT_EQ(R.SolutionCount, 5602u) << Mo.Name;
    EXPECT_EQ(solutionSet(M, R), Reference) << Mo.Name;
    EXPECT_GT(R.Stats.SemanticPruned, 0u) << Mo.Name;
    // The prune decisions are candidate-order-independent (the node
    // orders merge by bitwise meet), so the surviving state space is
    // identical level by level across every execution mode. It is smaller
    // than the baseline's (determined-cmp children are never stored) —
    // that is the prune working, not a divergence.
    ASSERT_EQ(R.Stats.LevelStates.size(), Baseline.Stats.LevelStates.size())
        << Mo.Name;
    for (size_t L = 0; L != R.Stats.LevelStates.size(); ++L)
      EXPECT_LE(R.Stats.LevelStates[L], Baseline.Stats.LevelStates[L])
          << Mo.Name << " level " << L;
    if (PrunedLevels.empty())
      PrunedLevels = R.Stats.LevelStates;
    else
      EXPECT_EQ(R.Stats.LevelStates, PrunedLevels) << Mo.Name;
  }

  SearchOptions Both = findAllConfig(MachineKind::Cmov, 3, kModes[0]);
  Both.SyntacticPrune = true;
  Both.SemanticPrune = true;
  SearchResult R = synthesize(M, Both);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.SolutionCount, 5602u);
  EXPECT_EQ(solutionSet(M, R), Reference);
  EXPECT_EQ(R.Stats.LevelStates, PrunedLevels);
  EXPECT_GT(R.Stats.SyntacticPruned, 0u);
  EXPECT_GT(R.Stats.SemanticPruned, 0u);
}

TEST(EngineEquivalence, SemanticPruneDominatesSyntacticAtN4) {
  // The semantic gate consults the dead-instruction summary too, so a
  // semantic-only run refuses at least what a syntactic-only run refuses
  // — plus the order-domain surplus. Measured at n=4 (cut 1.0 keeps the
  // run small); the solution set must also survive the prune.
  Machine M(MachineKind::Cmov, 4);
  SearchOptions Base;
  Base.Heuristic = HeuristicKind::PermCount;
  Base.Cut = CutConfig::mult(1.0);
  Base.FindAll = true;
  Base.MaxLength = networkUpperBound(MachineKind::Cmov, 4);

  SearchOptions Syn = Base;
  Syn.SyntacticPrune = true;
  SearchResult RSyn = synthesize(M, Syn);
  ASSERT_TRUE(RSyn.Found);

  SearchOptions Sem = Base;
  Sem.SemanticPrune = true;
  SearchResult RSem = synthesize(M, Sem);
  ASSERT_TRUE(RSem.Found);

  EXPECT_GT(RSem.Stats.SemanticPruned, 0u);
  EXPECT_GE(RSem.Stats.SemanticPruned, RSyn.Stats.SyntacticPruned);

  // Both prunes are sound: same optimal length, count, and kernel set as
  // the unpruned run of the same configuration.
  SearchResult RBase = synthesize(M, Base);
  ASSERT_TRUE(RBase.Found);
  EXPECT_EQ(RSem.OptimalLength, RBase.OptimalLength);
  EXPECT_EQ(RSem.SolutionCount, RBase.SolutionCount);
  EXPECT_EQ(solutionSet(M, RSem), solutionSet(M, RBase));
  EXPECT_EQ(RSyn.SolutionCount, RBase.SolutionCount);
}

TEST(EngineEquivalence, BestFirstHonorsSemanticPrune) {
  // The best-first engine shares the admits() gate: with the admissible
  // heuristic the found kernel stays minimal, and the prune counter moves.
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::NeededInstrs;
  Opts.Cut = CutConfig::none();
  Opts.MaxLength = networkUpperBound(MachineKind::Cmov, 3);
  Opts.SemanticPrune = true;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 11u);
  EXPECT_GT(R.Stats.SemanticPruned, 0u);
  EXPECT_TRUE(R.Stats.LevelStates.empty()); // Layered-engine counter only.
}

TEST(EngineEquivalence, SymmetryReducePreservesThe5602SolutionDag) {
  // The soundness pin of the renaming quotient (SearchOptions::
  // SymmetryReduce, analysis/Symmetry.h): states are merged with their
  // admissible-renaming orbit and solutions lifted back through the
  // per-edge witnesses, so the full n=3 all-solutions run must reproduce
  // the exact 5602-kernel set of the unquotiented baseline — in every
  // execution mode, with identical per-level state counts and merge
  // counters across modes (the merge is a pre-dedup per-candidate
  // property, so it cannot depend on the thread count).
  Machine M(MachineKind::Cmov, 3);
  SearchResult Baseline =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[0]));
  ASSERT_TRUE(Baseline.Found);
  ASSERT_EQ(Baseline.SolutionCount, 5602u);
  const std::set<std::string> Reference = solutionSet(M, Baseline);
  ASSERT_FALSE(Baseline.Stats.LevelStates.empty());

  std::vector<size_t> QuotientLevels;
  uint64_t ReferenceMerged = 0;
  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.SymmetryReduce = true;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 11u) << Mo.Name;
    EXPECT_EQ(R.SolutionCount, 5602u) << Mo.Name;
    EXPECT_EQ(solutionSet(M, R), Reference) << Mo.Name;
    EXPECT_GT(R.Stats.SymmetryMerged, 0u) << Mo.Name;
    // Stored states are orbit representatives, so every level shrinks (or
    // stays — but at least one level must actually merge something).
    ASSERT_EQ(R.Stats.LevelStates.size(), Baseline.Stats.LevelStates.size())
        << Mo.Name;
    bool Shrank = false;
    for (size_t L = 0; L != R.Stats.LevelStates.size(); ++L) {
      EXPECT_LE(R.Stats.LevelStates[L], Baseline.Stats.LevelStates[L])
          << Mo.Name << " level " << L;
      Shrank |= R.Stats.LevelStates[L] < Baseline.Stats.LevelStates[L];
    }
    EXPECT_TRUE(Shrank) << Mo.Name;
    if (QuotientLevels.empty()) {
      QuotientLevels = R.Stats.LevelStates;
      ReferenceMerged = R.Stats.SymmetryMerged;
    } else {
      EXPECT_EQ(R.Stats.LevelStates, QuotientLevels) << Mo.Name;
      EXPECT_EQ(R.Stats.SymmetryMerged, ReferenceMerged) << Mo.Name;
    }
  }

  // Composed with the order-domain prune: the set survives, and the
  // combined run stores no more states per level than the semantic prune
  // alone (the acceptance comparison; empirical, not a theorem — the
  // order meet over a merged orbit can be weaker than either member's,
  // see DESIGN.md section 11).
  SearchOptions SemOnly = findAllConfig(MachineKind::Cmov, 3, kModes[0]);
  SemOnly.SemanticPrune = true;
  SearchResult RSem = synthesize(M, SemOnly);
  ASSERT_TRUE(RSem.Found);

  SearchOptions Both = SemOnly;
  Both.SymmetryReduce = true;
  SearchResult RBoth = synthesize(M, Both);
  ASSERT_TRUE(RBoth.Found);
  EXPECT_EQ(RBoth.SolutionCount, 5602u);
  EXPECT_EQ(solutionSet(M, RBoth), Reference);
  EXPECT_GT(RBoth.Stats.SymmetryMerged, 0u);
  EXPECT_GT(RBoth.Stats.SemanticPruned, 0u);
  ASSERT_EQ(RBoth.Stats.LevelStates.size(), RSem.Stats.LevelStates.size());
  bool Shrank = false;
  for (size_t L = 0; L != RBoth.Stats.LevelStates.size(); ++L) {
    EXPECT_LE(RBoth.Stats.LevelStates[L], RSem.Stats.LevelStates[L])
        << "level " << L;
    Shrank |= RBoth.Stats.LevelStates[L] < RSem.Stats.LevelStates[L];
  }
  EXPECT_TRUE(Shrank);
}

TEST(EngineEquivalence, SymmetryReducePreservesCutRunsExactly) {
  // The quotient composed with the section 3.5 cut: cut decisions depend
  // only on permutation counts, which are orbit-invariant, so the n=3
  // cut-1.0 all-solutions run (234 kernels, small enough to reconstruct
  // in full) must lift back to the bit-identical kernel set.
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Base;
  Base.Heuristic = HeuristicKind::PermCount;
  Base.Cut = CutConfig::mult(1.0);
  Base.FindAll = true;
  Base.MaxLength = networkUpperBound(MachineKind::Cmov, 3);

  SearchResult RBase = synthesize(M, Base);
  ASSERT_TRUE(RBase.Found);
  ASSERT_EQ(RBase.SolutionCount, RBase.Solutions.size()); // Uncapped.

  SearchOptions SymOpts = Base;
  SymOpts.SymmetryReduce = true;
  SearchResult RSym = synthesize(M, SymOpts);
  ASSERT_TRUE(RSym.Found);
  EXPECT_EQ(RSym.OptimalLength, RBase.OptimalLength);
  EXPECT_EQ(RSym.SolutionCount, RBase.SolutionCount);
  EXPECT_EQ(solutionSet(M, RSym), solutionSet(M, RBase));
  EXPECT_GT(RSym.Stats.SymmetryMerged, 0u);
}

TEST(EngineEquivalence, SymmetryReduceComposesAtN4) {
  // The n=4 acceptance run (cut 1.0 keeps it small). This configuration
  // has 10.8M optimal kernels — far beyond MaxSolutionsKept, and the
  // truncated reconstruction prefix is enumeration-order-dependent, so
  // the full-set comparison lives in the n=3 tests; here the quotient
  // must preserve the exact path count (the DAG's Ways sum, which is not
  // capped), lift every reconstructed kernel back to a correct program,
  // merge something, and — alone and composed with the semantic prune —
  // store no more states per level than its no-symmetry counterpart.
  Machine M(MachineKind::Cmov, 4);
  SearchOptions Base;
  Base.Heuristic = HeuristicKind::PermCount;
  Base.Cut = CutConfig::mult(1.0);
  Base.FindAll = true;
  Base.MaxLength = networkUpperBound(MachineKind::Cmov, 4);

  SearchResult RBase = synthesize(M, Base);
  ASSERT_TRUE(RBase.Found);

  SearchOptions SymOpts = Base;
  SymOpts.SymmetryReduce = true;
  SearchResult RSym = synthesize(M, SymOpts);
  ASSERT_TRUE(RSym.Found);
  EXPECT_EQ(RSym.OptimalLength, RBase.OptimalLength);
  EXPECT_EQ(RSym.SolutionCount, RBase.SolutionCount);
  EXPECT_GT(RSym.Stats.SymmetryMerged, 0u);
  ASSERT_EQ(RSym.Stats.LevelStates.size(), RBase.Stats.LevelStates.size());
  bool Shrank = false;
  for (size_t L = 0; L != RSym.Stats.LevelStates.size(); ++L) {
    EXPECT_LE(RSym.Stats.LevelStates[L], RBase.Stats.LevelStates[L])
        << "level " << L;
    Shrank |= RSym.Stats.LevelStates[L] < RBase.Stats.LevelStates[L];
  }
  EXPECT_TRUE(Shrank);
  // Every reconstructed kernel went through the witness lift; spot-check
  // a deterministic stride of them against the concrete verifier.
  ASSERT_FALSE(RSym.Solutions.empty());
  const size_t Stride = std::max<size_t>(1, RSym.Solutions.size() / 500);
  for (size_t I = 0; I < RSym.Solutions.size(); I += Stride)
    ASSERT_TRUE(isCorrectKernel(M, RSym.Solutions[I])) << "solution " << I;

  SearchOptions Sem = Base;
  Sem.SemanticPrune = true;
  SearchResult RSem = synthesize(M, Sem);
  ASSERT_TRUE(RSem.Found);

  SearchOptions BothOpts = Sem;
  BothOpts.SymmetryReduce = true;
  SearchResult RBoth = synthesize(M, BothOpts);
  ASSERT_TRUE(RBoth.Found);
  EXPECT_EQ(RBoth.SolutionCount, RBase.SolutionCount);
  EXPECT_GT(RBoth.Stats.SymmetryMerged, 0u);
  ASSERT_EQ(RBoth.Stats.LevelStates.size(), RSem.Stats.LevelStates.size());
  for (size_t L = 0; L != RBoth.Stats.LevelStates.size(); ++L)
    EXPECT_LE(RBoth.Stats.LevelStates[L], RSem.Stats.LevelStates[L])
        << "level " << L;
}

TEST(EngineEquivalence, CompressedFrontierPreservesThe5602SolutionDag) {
  // The transparency pin of the compressed frontier (SearchOptions::
  // CompressFrontier): sealing retired levels is pure storage — the
  // solution set, count, length, AND the per-level state counts must be
  // bit-identical to the uncompressed baseline in every execution mode
  // (dedup probes read the same rows back through the decode layer).
  Machine M(MachineKind::Cmov, 3);
  SearchResult Baseline =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[0]));
  ASSERT_TRUE(Baseline.Found);
  ASSERT_EQ(Baseline.SolutionCount, 5602u);
  const std::set<std::string> Reference = solutionSet(M, Baseline);

  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.CompressFrontier = true;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 11u) << Mo.Name;
    EXPECT_EQ(R.SolutionCount, 5602u) << Mo.Name;
    EXPECT_EQ(solutionSet(M, R), Reference) << Mo.Name;
    EXPECT_EQ(R.Stats.LevelStates, Baseline.Stats.LevelStates) << Mo.Name;
    EXPECT_EQ(R.Stats.StatesExpanded, Baseline.Stats.StatesExpanded)
        << Mo.Name;
    EXPECT_EQ(R.Stats.DedupHits, Baseline.Stats.DedupHits) << Mo.Name;
    // The tier actually engaged and its accounting is coherent.
    EXPECT_GT(R.Stats.CompressedBytes, 0u) << Mo.Name;
    EXPECT_GT(R.Stats.CompressedRawBytes, R.Stats.CompressedBytes) << Mo.Name;
    EXPECT_GT(R.Stats.BlocksDecoded, 0u) << Mo.Name;
    EXPECT_GT(R.Stats.PeakResidentBytes, 0u) << Mo.Name;
    EXPECT_EQ(R.Stats.SpilledBytes, 0u) << Mo.Name;
    EXPECT_EQ(R.Stats.PeakStateBytes, R.Stats.PeakResidentBytes) << Mo.Name;
  }
}

TEST(EngineEquivalence, CompressedSpillPreservesThe5602SolutionDag) {
  // The spill tier on top: threshold 0 pushes every sealed level to disk,
  // and the dedup probes pread them back. Results must stay identical and
  // the spill counters must move.
  std::string Dir = ::testing::TempDir();
  {
    std::string Probe = Dir + "/sks-equiv-probe";
    std::FILE *F = std::fopen(Probe.c_str(), "w");
    if (!F)
      GTEST_SKIP() << "temp dir not writable: " << Dir;
    std::fclose(F);
    std::remove(Probe.c_str());
  }

  Machine M(MachineKind::Cmov, 3);
  SearchResult Baseline =
      synthesize(M, findAllConfig(MachineKind::Cmov, 3, kModes[0]));
  ASSERT_TRUE(Baseline.Found);
  const std::set<std::string> Reference = solutionSet(M, Baseline);

  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.CompressFrontier = true;
    Opts.SpillDir = Dir;
    Opts.SpillThresholdBytes = 0;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.SolutionCount, 5602u) << Mo.Name;
    EXPECT_EQ(solutionSet(M, R), Reference) << Mo.Name;
    EXPECT_EQ(R.Stats.LevelStates, Baseline.Stats.LevelStates) << Mo.Name;
    EXPECT_GT(R.Stats.SpilledBytes, 0u) << Mo.Name;
    // peak_bytes = resident + spilled, so the split is strict.
    EXPECT_GT(R.Stats.PeakStateBytes, R.Stats.PeakResidentBytes) << Mo.Name;
  }
}

TEST(EngineEquivalence, CompressionComposesWithSymmetryAndSemanticPrune) {
  // The full stack: compression + spill + symmetry quotient + order-domain
  // prune, against the symmetry+semantic baseline — the storage tiers must
  // be invisible to both reductions.
  std::string Dir = ::testing::TempDir();
  {
    std::string Probe = Dir + "/sks-equiv-probe3";
    std::FILE *F = std::fopen(Probe.c_str(), "w");
    if (!F)
      GTEST_SKIP() << "temp dir not writable: " << Dir;
    std::fclose(F);
    std::remove(Probe.c_str());
  }

  Machine M(MachineKind::Cmov, 3);
  SearchOptions Base = findAllConfig(MachineKind::Cmov, 3, kModes[0]);
  Base.SymmetryReduce = true;
  Base.SemanticPrune = true;
  SearchResult RBase = synthesize(M, Base);
  ASSERT_TRUE(RBase.Found);
  ASSERT_EQ(RBase.SolutionCount, 5602u);
  const std::set<std::string> Reference = solutionSet(M, RBase);

  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.SymmetryReduce = true;
    Opts.SemanticPrune = true;
    Opts.CompressFrontier = true;
    Opts.SpillDir = Dir;
    Opts.SpillThresholdBytes = 0;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.SolutionCount, 5602u) << Mo.Name;
    EXPECT_EQ(solutionSet(M, R), Reference) << Mo.Name;
    EXPECT_EQ(R.Stats.LevelStates, RBase.Stats.LevelStates) << Mo.Name;
    EXPECT_GT(R.Stats.SymmetryMerged, 0u) << Mo.Name;
    EXPECT_GT(R.Stats.SemanticPruned, 0u) << Mo.Name;
    EXPECT_GT(R.Stats.SpilledBytes, 0u) << Mo.Name;
  }
}

TEST(EngineEquivalence, CompressedFrontierUnderThreadsSmoke) {
  // The tsan_frontier ctest entry: config (III) + compression keeps every
  // run sub-second even instrumented, while driving sealed-level decode
  // (per-worker caches) and the work-stealing shard merge under threads.
  Machine M(MachineKind::Cmov, 3);
  std::set<std::string> Reference;
  uint64_t ReferenceCount = 0;
  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.Cut = CutConfig::mult(1.0);
    Opts.CompressFrontier = true;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 11u) << Mo.Name;
    EXPECT_GT(R.Stats.CompressedBytes, 0u) << Mo.Name;
    std::set<std::string> Set = solutionSet(M, R);
    if (Reference.empty()) {
      Reference = std::move(Set);
      ReferenceCount = R.SolutionCount;
    } else {
      EXPECT_EQ(R.SolutionCount, ReferenceCount) << Mo.Name;
      EXPECT_EQ(Set, Reference) << Mo.Name;
    }
  }
}

TEST(EngineEquivalence, SymmetryReduceUnderThreadsSmoke) {
  // The tsan-labelled symmetry subset (tests/CMakeLists.txt): config (III)
  // plus the quotient keeps every run in the tens of milliseconds even
  // instrumented, while driving the witness-carrying candidates and the
  // renamed order states through the threaded expansion and the sharded
  // parallel merge.
  Machine M(MachineKind::Cmov, 3);
  std::set<std::string> Reference;
  uint64_t ReferenceCount = 0;
  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.Cut = CutConfig::mult(1.0);
    Opts.SemanticPrune = true;
    Opts.SymmetryReduce = true;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 11u) << Mo.Name;
    EXPECT_GT(R.Stats.SymmetryMerged, 0u) << Mo.Name;
    std::set<std::string> Set = solutionSet(M, R);
    if (Reference.empty()) {
      Reference = std::move(Set);
      ReferenceCount = R.SolutionCount;
    } else {
      EXPECT_EQ(R.SolutionCount, ReferenceCount) << Mo.Name;
      EXPECT_EQ(Set, Reference) << Mo.Name;
    }
  }
}

TEST(EngineEquivalence, GoalSolutionSetsAreModeInvariant) {
  // The goal-predicate generalization under every execution mode, composed
  // with the symmetry quotient and the order-domain prune: the select-1
  // (minimum) and top-1 (maximum) all-solutions runs at n=3 each have
  // exactly 4 optimal kernels of length 4 (measured; two compare orders
  // times two cmov argument orders), and the reconstructed sets must be
  // identical across sequential/threaded/batch execution. This is the
  // non-sort analogue of the 5602-kernel pin above.
  struct GoalCase {
    GoalSpec Goal;
    const char *Name;
  };
  const GoalCase Cases[] = {
      {GoalSpec::selectK(1), "select-1"},
      {GoalSpec::topK(1), "top-1"},
  };
  for (const GoalCase &C : Cases) {
    Machine M(MachineKind::Cmov, 3, /*Scratch=*/1, C.Goal);
    std::set<std::string> Reference;
    for (const Mode &Mo : kModes) {
      SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
      Opts.SymmetryReduce = true;
      Opts.SemanticPrune = true;
      SearchResult R = synthesize(M, Opts);
      ASSERT_TRUE(R.Found) << C.Name << " " << Mo.Name;
      EXPECT_EQ(R.OptimalLength, 4u) << C.Name << " " << Mo.Name;
      EXPECT_EQ(R.SolutionCount, 4u) << C.Name << " " << Mo.Name;
      std::set<std::string> Set = solutionSet(M, R);
      EXPECT_EQ(Set.size(), 4u) << C.Name << " " << Mo.Name;
      for (const Program &P : R.Solutions)
        EXPECT_TRUE(isCorrectKernel(M, P)) << C.Name << " " << Mo.Name;
      if (Reference.empty())
        Reference = std::move(Set);
      else
        EXPECT_EQ(Set, Reference) << C.Name << " " << Mo.Name;
    }
  }
}

TEST(EngineEquivalence, GoalSearchUnderThreadsSmoke) {
  // The tsan_goals ctest entry: the select-1 all-solutions run is a few
  // milliseconds even instrumented, and it drives goal-collapsed distinct
  // counts (search/SearchImpl.h countDistinctGoal) and the goal-pinned
  // symmetry quotient through the threaded expansion and sharded merge.
  Machine M(MachineKind::Cmov, 3, /*Scratch=*/1, GoalSpec::selectK(1));
  std::set<std::string> Reference;
  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.SymmetryReduce = true;
    Opts.SemanticPrune = true;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 4u) << Mo.Name;
    std::set<std::string> Set = solutionSet(M, R);
    if (Reference.empty())
      Reference = std::move(Set);
    else
      EXPECT_EQ(Set, Reference) << Mo.Name;
  }
}

TEST(EngineEquivalence, SemanticPruneUnderThreadsSmoke) {
  // The tsan-labelled ctest subset (tests/CMakeLists.txt) runs this
  // instead of the minute-scale soundness pins above: config (III) —
  // perm-count heuristic, viability, cut k=1 — keeps each run in the
  // tens of milliseconds even instrumented, while still driving the
  // per-node order states through the threaded expansion and the
  // sharded parallel merge.
  Machine M(MachineKind::Cmov, 3);
  std::set<std::string> Reference;
  uint64_t ReferenceCount = 0;
  for (const Mode &Mo : kModes) {
    SearchOptions Opts = findAllConfig(MachineKind::Cmov, 3, Mo);
    Opts.Cut = CutConfig::mult(1.0);
    Opts.SyntacticPrune = true;
    Opts.SemanticPrune = true;
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << Mo.Name;
    EXPECT_EQ(R.OptimalLength, 11u) << Mo.Name;
    EXPECT_GT(R.Stats.SemanticPruned, 0u) << Mo.Name;
    std::set<std::string> Set = solutionSet(M, R);
    if (Reference.empty()) {
      Reference = std::move(Set);
      ReferenceCount = R.SolutionCount;
    } else {
      EXPECT_EQ(R.SolutionCount, ReferenceCount) << Mo.Name;
      EXPECT_EQ(Set, Reference) << Mo.Name;
    }
  }
}

} // namespace
