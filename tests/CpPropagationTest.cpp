//===- tests/CpPropagationTest.cpp - CP-engine behaviour tests ---------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cp/CpSolver.h"

#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(CpSolver, HeuristicsDoNotChangeFeasibility) {
  // With or without the section 4 heuristics, the n=2 instance stays
  // feasible at length 4 and infeasible at length 3.
  Machine M(MachineKind::Cmov, 2);
  for (bool NoCC : {false, true})
    for (bool FirstCmp : {false, true}) {
      CpOptions Opts;
      Opts.Length = 4;
      Opts.NoConsecutiveCmp = NoCC;
      Opts.FirstInstrCmp = FirstCmp;
      Opts.TimeoutSeconds = 120;
      CpResult R = cpSynthesize(M, Opts);
      ASSERT_TRUE(R.Found) << NoCC << FirstCmp;
      EXPECT_TRUE(isCorrectKernel(M, R.P));
      Opts.Length = 3;
      EXPECT_FALSE(cpSynthesize(M, Opts).Found);
    }
}

TEST(CpSolver, OnlyReadInitializedStillFindsKernel) {
  // Every n=2 optimal kernel writes the scratch register before reading
  // it, so the heuristic must not lose feasibility.
  Machine M(MachineKind::Cmov, 2);
  CpOptions Opts;
  Opts.Length = 4;
  Opts.OnlyReadInitialized = true;
  Opts.TimeoutSeconds = 120;
  CpResult R = cpSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(isCorrectKernel(M, R.P));
}

TEST(CpSolver, CmpSymmetryOffWidensAlphabetButKeepsAnswers) {
  Machine M(MachineKind::Cmov, 2);
  CpOptions Opts;
  Opts.Length = 4;
  Opts.CmpSymmetry = false; // Adds the symmetric compares.
  Opts.TimeoutSeconds = 120;
  CpResult R = cpSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(isCorrectKernel(M, R.P));
}

TEST(CpSolver, EraseValueCheckPrunesWithoutLosingSolutions) {
  Machine M(MachineKind::Cmov, 2);
  CpOptions With, Without;
  With.Length = Without.Length = 4;
  With.EraseValueCheck = true;
  Without.EraseValueCheck = false;
  With.EnumerateAll = Without.EnumerateAll = true;
  With.TimeoutSeconds = Without.TimeoutSeconds = 300;
  CpResult A = cpSynthesize(M, With);
  CpResult B = cpSynthesize(M, Without);
  ASSERT_TRUE(A.Found);
  ASSERT_TRUE(B.Found);
  EXPECT_EQ(A.Solutions.size(), B.Solutions.size())
      << "the check prunes the tree, never solutions";
  EXPECT_LE(A.Backtracks, B.Backtracks);
}

TEST(CpSolver, MinMaxMachineWorks) {
  Machine M(MachineKind::MinMax, 2);
  CpOptions Opts;
  Opts.Length = 3;
  Opts.TimeoutSeconds = 120;
  CpResult R = cpSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(isCorrectKernel(M, R.P));
  Opts.Length = 2;
  EXPECT_FALSE(cpSynthesize(M, Opts).Found)
      << "a pair cannot be sorted in 2 min/max instructions";
}

TEST(CpSolver, ReportsBacktrackAndPropagationCounts) {
  Machine M(MachineKind::Cmov, 2);
  CpOptions Opts;
  Opts.Length = 4;
  Opts.TimeoutSeconds = 60;
  CpResult R = cpSynthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.Propagations, 0u);
}

} // namespace
