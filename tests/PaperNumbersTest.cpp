//===- tests/PaperNumbersTest.cpp - Pinned reproduction numbers --------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regression-pins every quantitative claim this reproduction makes against
// the paper (EXPERIMENTS.md's summary table), so a change that silently
// breaks a reproduced number fails CI. Numbers that are exact paper
// matches are asserted as such; numbers that are implementation-specific
// (cut-semantics dependent) are pinned to our measured values with a
// comment.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "machine/Machine.h"
#include "search/Search.h"
#include "support/Permutations.h"
#include "tables/DistanceTable.h"
#include "verify/Verify.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace sks;

namespace {

uint64_t countSolutions(const Machine &M, unsigned Length, CutConfig Cut,
                        const DistanceTable *DT) {
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.MaxLength = Length;
  Opts.MaxSolutionsKept = 0;
  Opts.Cut = Cut;
  Opts.TimeoutSeconds = 600;
  SearchResult R = synthesize(M, Opts, DT);
  return R.Found ? R.SolutionCount : 0;
}

TEST(PaperNumbers, ProgramSpaceLog10) {
  // Section 5.1: ~10^19.9 / 10^40.0 / 10^71.2 for n = 3 / 4 / 5 (m = 1).
  const unsigned OptimalLength[6] = {0, 0, 0, 11, 20, 33};
  const double Expected[6] = {0, 0, 0, 19.9, 40.0, 71.2};
  for (unsigned N = 3; N <= 5; ++N) {
    Machine M(MachineKind::Cmov, N);
    double Log10 =
        OptimalLength[N] * std::log10(double(M.unrestrictedAlphabetSize()));
    EXPECT_NEAR(Log10, Expected[N], 0.05) << "n=" << N;
  }
}

TEST(PaperNumbers, OptimalLengthsAllMachines) {
  // 11 / 20 (cmov n=3/4), 8 / 15 (min/max n=3/4) — all exact paper values.
  struct Case {
    MachineKind Kind;
    unsigned N;
    unsigned Expected;
  };
  const Case Cases[] = {{MachineKind::Cmov, 3, 11},
                        {MachineKind::Cmov, 4, 20},
                        {MachineKind::MinMax, 3, 8},
                        {MachineKind::MinMax, 4, 15}};
  for (const Case &C : Cases) {
    Machine M(C.Kind, C.N);
    SearchOptions Opts;
    Opts.Heuristic = HeuristicKind::PermCount;
    Opts.UseViability = true;
    Opts.Cut = CutConfig::mult(1.0);
    Opts.MaxLength = networkUpperBound(C.Kind, C.N);
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found) << "n=" << C.N;
    EXPECT_EQ(R.OptimalLength, C.Expected)
        << "kind=" << static_cast<int>(C.Kind) << " n=" << C.N;
    EXPECT_TRUE(isCorrectKernel(M, R.Solutions.front()));
  }
}

TEST(PaperNumbers, SolutionCountsPerCut) {
  // Paper: 5602 (no cut and k=2), 838 (k=1.5), 222 (k=1). The uncut and
  // k=2 counts match exactly; the k=1.5/k=1 counts depend on the cut's
  // exploration-order semantics (see EXPERIMENTS.md) and are pinned to
  // this implementation's layered-exact values.
  Machine M(MachineKind::Cmov, 3);
  DistanceTable DT(M);
  EXPECT_EQ(countSolutions(M, 11, CutConfig::none(), &DT), 5602u);
  EXPECT_EQ(countSolutions(M, 11, CutConfig::mult(2.0), &DT), 5602u);
  EXPECT_EQ(countSolutions(M, 11, CutConfig::mult(1.5), &DT), 3682u);
  EXPECT_EQ(countSolutions(M, 11, CutConfig::mult(1.0), &DT), 234u);
}

TEST(PaperNumbers, ScoreClassesN4) {
  // Section 5.3: the n=4 solution scores are {55, 58, 61, 64, 67, 70};
  // every optimal length-20 kernel carries exactly 5 cmps, so scores are
  // 70 - 3 * (#movs). The 5-CAS network realizes the minimum 55.
  Machine M(MachineKind::Cmov, 4);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.UseViability = true;
  Opts.Cut = CutConfig::mult(1.0);
  Opts.MaxLength = 20;
  Opts.MaxSolutionsKept = 5000;
  Opts.TimeoutSeconds = 600;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  for (const Program &P : R.Solutions) {
    unsigned Score = kernelScore(P);
    EXPECT_GE(Score, 55u);
    EXPECT_LE(Score, 70u);
    EXPECT_EQ((70 - Score) % 3, 0u) << "scores step by 3 (mov<->cmov)";
    EXPECT_EQ(countMix(P).Cmp, 5u) << "5 comparisons in every optimum";
  }
}

TEST(PaperNumbers, HybridOffersNoShorterKernel) {
  // Section 5.4's remark, as a pinned fact: the n=3 hybrid optimum equals
  // the pure cmov optimum (11). (Uncut search; the perm-count cut is
  // mistuned for the hybrid alphabet.)
  Machine M(MachineKind::Hybrid, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.UseViability = true;
  Opts.MaxLength = 11; // = the pure optimum; a shorter kernel would show up.
  Opts.TimeoutSeconds = 300;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 11u);
  // And nothing shorter exists.
  SearchResult Proof;
  EXPECT_TRUE(proveNoKernelOfLength(M, 10, Proof, nullptr, 600));
}

TEST(PaperNumbers, EnumStatesWithinPaperOrderOfMagnitude) {
  // Paper: ~7e3 states for n=3, ~7e4 for n=4 with the best config; ours
  // land within a small constant factor on the same configuration.
  for (auto [N, PaperStates] : {std::pair{3u, 7000u}, {4u, 70000u}}) {
    Machine M(MachineKind::Cmov, N);
    SearchOptions Opts;
    Opts.Heuristic = HeuristicKind::PermCount;
    Opts.UseViability = true;
    Opts.Cut = CutConfig::mult(1.0);
    Opts.MaxLength = networkUpperBound(MachineKind::Cmov, N);
    SearchResult R = synthesize(M, Opts);
    ASSERT_TRUE(R.Found);
    EXPECT_LT(R.Stats.StatesExpanded, 10u * PaperStates) << "n=" << N;
  }
}

} // namespace
