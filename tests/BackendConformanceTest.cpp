//===- tests/BackendConformanceTest.cpp - Backend interface conformance ------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Conformance suite for the driver layer: every registered backend, driven
// only through the Backend interface, must (a) produce a Verify-checked
// kernel where its substrate is able to (the paper's section 5 tables say
// where that is), (b) honor the shared deadline promptly, (c) report
// pre-cancelled requests as Cancelled, and (d) never surface an unverified
// kernel as success. The portfolio driver must return a verified winner
// and cancel the losers cooperatively.
//
// Paper-faithful deviations from "every backend solves every size":
//  - ILP cannot solve even n = 2 (length 4): a 10-minute run explores only
//    ~550 branch-and-bound nodes on the big-M encoding. The paper's ILP
//    rows fail the same way, so the conformance bar for ILP is a prompt
//    TimedOut, not a kernel.
//  - STOKE/MCTS/SMT/CP do not reach n = 3 within unit-test budgets
//    (minutes at best, per the section 5.2 tables); n = 3 coverage here is
//    enum + planning, the routes the paper found viable.
//
//===----------------------------------------------------------------------===//

#include "driver/Backends.h"
#include "driver/Portfolio.h"
#include "machine/Machine.h"
#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

SynthRequest request(unsigned N, SynthGoal Goal, double TimeoutSeconds) {
  SynthRequest Req;
  Req.N = N;
  Req.Kind = MachineKind::Cmov;
  Req.Goal = Goal;
  Req.TimeoutSeconds = TimeoutSeconds;
  return Req;
}

TEST(BackendRegistry, ResolvesEveryName) {
  std::vector<std::string> Names = backendNames();
  EXPECT_EQ(Names.size(), 7u);
  for (const std::string &Name : Names) {
    std::unique_ptr<Backend> B = createBackend(Name);
    ASSERT_NE(B, nullptr) << Name;
    EXPECT_EQ(B->name(), Name);
  }
  EXPECT_EQ(createBackend("no-such-backend"), nullptr);
}

TEST(BackendConformance, EveryCapableBackendSynthesizesN2) {
  Machine M(MachineKind::Cmov, 2);
  for (const std::string &Name : backendNames()) {
    if (Name == "ilp")
      continue; // Covered below: the ILP route cannot solve even n = 2.
    std::unique_ptr<Backend> B = createBackend(Name);
    SynthOutcome O = B->run(request(2, SynthGoal::FirstKernel, 120));
    EXPECT_TRUE(O.Status == SynthStatus::Found ||
                O.Status == SynthStatus::Optimal)
        << Name << " -> " << statusName(O.Status);
    EXPECT_TRUE(O.Verified) << Name;
    // The Verified flag must mean what it says, independent of the gate.
    EXPECT_TRUE(isCorrectKernel(M, O.Kernel)) << Name;
  }
}

TEST(BackendConformance, IlpHonorsDeadlineAtN2) {
  // The big-M encoding defeats branch-and-bound even at n = 2 (paper
  // finding; reproduced at 10-minute scale). The conformance requirement
  // is that the deadline lands promptly and the failure is truthful.
  std::unique_ptr<Backend> B = createBackend("ilp");
  SynthOutcome O = B->run(request(2, SynthGoal::FirstKernel, 1.0));
  EXPECT_EQ(O.Status, SynthStatus::TimedOut);
  EXPECT_TRUE(O.Kernel.empty());
  EXPECT_FALSE(O.Verified);
  EXPECT_LT(O.Seconds, 10.0);
}

TEST(BackendConformance, OptimalCapableBackendsCertifyN2Minimum) {
  // enum, smt, and cp can certify minimality; the optimal cmov kernel for
  // n = 2 has length 4.
  for (const char *Name : {"enum", "smt", "cp"}) {
    std::unique_ptr<Backend> B = createBackend(Name);
    EXPECT_TRUE(B->optimalCapable()) << Name;
    SynthOutcome O = B->run(request(2, SynthGoal::MinLength, 120));
    EXPECT_EQ(O.Status, SynthStatus::Optimal) << Name;
    EXPECT_TRUE(O.Verified) << Name;
    EXPECT_EQ(O.Kernel.size(), 4u) << Name;
  }
}

TEST(BackendConformance, ViableRoutesSynthesizeN3) {
  // n = 3 through the interface, on the routes the paper found viable:
  // enumeration (optimal, length 11) and satisficing planning.
  Machine M(MachineKind::Cmov, 3);
  {
    SynthOutcome O =
        createBackend("enum")->run(request(3, SynthGoal::MinLength, 300));
    EXPECT_EQ(O.Status, SynthStatus::Optimal);
    EXPECT_TRUE(O.Verified);
    EXPECT_EQ(O.Kernel.size(), 11u);
    EXPECT_TRUE(isCorrectKernel(M, O.Kernel));
  }
  {
    SynthOutcome O =
        createBackend("plan")->run(request(3, SynthGoal::FirstKernel, 300));
    EXPECT_EQ(O.Status, SynthStatus::Found);
    EXPECT_TRUE(O.Verified);
    EXPECT_TRUE(isCorrectKernel(M, O.Kernel));
  }
}

TEST(BackendConformance, PreCancelledRequestReportsCancelled) {
  StopSource Source;
  Source.requestStop();
  for (const std::string &Name : backendNames()) {
    SynthRequest Req = request(3, SynthGoal::FirstKernel, 300);
    Req.Stop = Source.token();
    SynthOutcome O = createBackend(Name)->run(Req);
    EXPECT_EQ(O.Status, SynthStatus::Cancelled) << Name;
    EXPECT_TRUE(O.Kernel.empty()) << Name;
    EXPECT_LT(O.Seconds, 5.0) << Name;
  }
}

TEST(BackendConformance, EveryBackendHonorsAHundredMillisecondDeadline) {
  // The shared-deadline regression of the driver refactor: at n = 4 no
  // substrate can finish in 100 ms, so each must wind down cooperatively.
  // Release builds return within ~2x the deadline; the bound here leaves
  // slack for sanitizer builds and loaded single-core CI hosts.
  for (const std::string &Name : backendNames()) {
    SynthOutcome O =
        createBackend(Name)->run(request(4, SynthGoal::MinLength, 0.1));
    if (O.Kernel.empty()) {
      EXPECT_EQ(O.Status, SynthStatus::TimedOut) << Name;
    } else {
      EXPECT_TRUE(O.Verified) << Name; // A sub-100ms find must be real.
    }
    EXPECT_LT(O.Seconds, 2.0) << Name << " overshot the deadline";
  }
}

/// A backend that claims success with whatever kernel it is given —
/// exercises the driver's universal verification gate.
class ClaimingBackend final : public Backend {
public:
  explicit ClaimingBackend(Program P)
      : Backend("claiming", /*OptimalCapable=*/false), Claim(std::move(P)) {}

protected:
  SynthOutcome runImpl(const Machine &, const SynthRequest &,
                       const StopToken &) const override {
    SynthOutcome O;
    O.Kernel = Claim;
    O.Status = SynthStatus::Found;
    return O;
  }

private:
  Program Claim;
};

TEST(BackendConformance, VerificationGateDemotesWrongClaims) {
  // A lying backend: claims the empty program sorts n = 2. The driver must
  // strip the claim rather than surface unverified success.
  ClaimingBackend Liar{Program{}};
  SynthOutcome O = Liar.run(request(2, SynthGoal::FirstKernel, 10));
  EXPECT_EQ(O.Status, SynthStatus::Exhausted);
  EXPECT_TRUE(O.Kernel.empty());
  EXPECT_FALSE(O.Verified);
  bool Flagged = false;
  for (const auto &KV : O.Stats)
    Flagged |= KV.first == "verify_failed";
  EXPECT_TRUE(Flagged);

  // An honest claim passes the gate untouched.
  SynthOutcome Real =
      createBackend("enum")->run(request(2, SynthGoal::FirstKernel, 10));
  ASSERT_TRUE(Real.Verified);
  ClaimingBackend Honest{Real.Kernel};
  SynthOutcome O2 = Honest.run(request(2, SynthGoal::FirstKernel, 10));
  EXPECT_EQ(O2.Status, SynthStatus::Found);
  EXPECT_TRUE(O2.Verified);
  EXPECT_EQ(O2.Kernel, Real.Kernel);
}

TEST(PortfolioDriver, NThreeReturnsVerifiedWinnerAndCancelsLosers) {
  // The acceptance race: all seven registered backends on n = 3 under the
  // min-length goal. Whoever wins must hold a verified optimal-length
  // kernel; everyone else is cancelled cooperatively (a loser may also
  // have finished legitimately just before the cancel landed).
  std::vector<std::unique_ptr<Backend>> Backends;
  for (const std::string &Name : backendNames())
    Backends.push_back(createBackend(Name));
  SynthRequest Req = request(3, SynthGoal::MinLength, 300);
  // Two race threads keep the test fast on small CI hosts: the enumerative
  // backend wins within seconds and the queued backends then observe the
  // cancel before starting any real work.
  Req.NumThreads = 2;

  PortfolioResult R = runPortfolio(Backends, Req);
  ASSERT_NE(R.WinnerIndex, SIZE_MAX);
  EXPECT_EQ(R.Outcomes.size(), Backends.size());
  EXPECT_TRUE(R.Winner.Verified);
  EXPECT_EQ(R.Winner.Status, SynthStatus::Optimal);
  EXPECT_EQ(R.Winner.Kernel.size(), 11u);
  Machine M(MachineKind::Cmov, 3);
  EXPECT_TRUE(isCorrectKernel(M, R.Winner.Kernel));

  size_t Cancelled = 0;
  for (size_t I = 0; I != R.Outcomes.size(); ++I) {
    if (I == R.WinnerIndex)
      continue;
    const SynthOutcome &O = R.Outcomes[I];
    Cancelled += O.Status == SynthStatus::Cancelled;
    // No loser may beat the certified minimum.
    if (O.Verified) {
      EXPECT_GE(O.Kernel.size(), R.Winner.Kernel.size()) << O.BackendName;
    }
  }
  EXPECT_GE(Cancelled, 4u);
}

} // namespace
