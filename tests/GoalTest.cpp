//===- tests/GoalTest.cpp - Goal-predicate layer tests ---------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests for the goal-predicate generalization (machine/Goal.h): the
// GoalSpec family itself, the goal-parameterized n!-checker against a
// from-scratch brute force, the 0-1 certifier's threshold extension, the
// widened key-payload model, and the packed-pair JIT.
//
//===----------------------------------------------------------------------===//

#include "codegen/Jit.h"
#include "kernels/ReferenceKernels.h"
#include "support/Permutations.h"
#include "support/Rng.h"
#include "verify/Verify.h"
#include "verify/ZeroOne.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <vector>

using namespace sks;

namespace {

Program randomProgram(const Machine &M, Rng &R, unsigned Length) {
  Program P;
  const std::vector<Instr> &Alphabet = M.instructions();
  for (unsigned I = 0; I != Length; ++I)
    P.push_back(Alphabet[R.below(Alphabet.size())]);
  return P;
}

/// Every member of the goal family that is valid at array length \p N.
std::vector<GoalSpec> allGoals(unsigned N) {
  std::vector<GoalSpec> Goals = {GoalSpec::sort()};
  for (unsigned K = 1; K <= N; ++K) {
    Goals.push_back(GoalSpec::selectK(K));
    Goals.push_back(GoalSpec::topK(K));
    Goals.push_back(GoalSpec::partialSort(K));
  }
  return Goals;
}

//===----------------------------------------------------------------------===//
// GoalSpec unit tests
//===----------------------------------------------------------------------===//

TEST(GoalSpec, NamesRoundTripThroughParse) {
  for (unsigned N = 1; N <= 6; ++N) {
    for (const GoalSpec &G : allGoals(N)) {
      GoalSpec Parsed;
      ASSERT_TRUE(GoalSpec::parse(G.name(), Parsed)) << G.name();
      EXPECT_EQ(Parsed, G) << G.name();
    }
  }
}

TEST(GoalSpec, ParseRejectsGarbage) {
  const char *Bad[] = {"",          "wat",         "select",   "select-",
                       "select-0",  "select--1",   "select-x", "top-",
                       "top-0",     "partial-sort", "sort-2",  "select-2x",
                       "select- 2", "SELECT-2"};
  for (const char *Text : Bad) {
    GoalSpec Out = GoalSpec::topK(3); // Sentinel: must stay untouched.
    EXPECT_FALSE(GoalSpec::parse(Text, Out)) << "'" << Text << "'";
    EXPECT_EQ(Out, GoalSpec::topK(3)) << "'" << Text << "'";
  }
}

TEST(GoalSpec, PinnedPositionsMatchTheFamilyDefinitions) {
  const unsigned N = 4;
  EXPECT_EQ(GoalSpec::sort().pinnedPositions(N), 0b1111u);
  EXPECT_EQ(GoalSpec::selectK(1).pinnedPositions(N), 0b0001u);
  EXPECT_EQ(GoalSpec::selectK(3).pinnedPositions(N), 0b0100u);
  EXPECT_EQ(GoalSpec::topK(1).pinnedPositions(N), 0b1000u);
  EXPECT_EQ(GoalSpec::topK(2).pinnedPositions(N), 0b1100u);
  EXPECT_EQ(GoalSpec::partialSort(2).pinnedPositions(N), 0b0011u);
  // Full-width parameters pin everything: these goals coincide with sort.
  EXPECT_EQ(GoalSpec::topK(N).pinnedPositions(N), 0b1111u);
  EXPECT_EQ(GoalSpec::partialSort(N).pinnedPositions(N), 0b1111u);
}

TEST(GoalSpec, ValidForChecksTheParameterRange) {
  EXPECT_TRUE(GoalSpec::sort().validFor(3));
  EXPECT_TRUE(GoalSpec::selectK(3).validFor(3));
  EXPECT_FALSE(GoalSpec::selectK(4).validFor(3));
  EXPECT_FALSE(GoalSpec::topK(0).validFor(3));
  EXPECT_FALSE(GoalSpec::partialSort(7).validFor(6));
}

TEST(GoalSpec, EqualityIgnoresTheSortParameter) {
  GoalSpec A = GoalSpec::sort();
  GoalSpec B = GoalSpec::sort();
  B.K = 7; // Meaningless for sort; must not break equality.
  EXPECT_EQ(A, B);
  EXPECT_NE(GoalSpec::selectK(1), GoalSpec::selectK(2));
  EXPECT_NE(GoalSpec::selectK(2), GoalSpec::topK(2));
}

//===----------------------------------------------------------------------===//
// Goal-parameterized n!-checker vs brute force
//===----------------------------------------------------------------------===//

/// From-scratch correctness: run \p P on every permutation and check each
/// goal-pinned data register directly — no shared code with the packed
/// accepts() path of verify/Verify.cpp.
bool bruteForceCorrect(const Machine &M, const Program &P) {
  const unsigned N = M.numData();
  const uint32_t Pinned = M.goal().pinnedPositions(N);
  for (const std::vector<int> &Perm : allPermutations(N)) {
    uint32_t Row = M.run(M.packInitial(Perm), P);
    for (unsigned J = 0; J != N; ++J)
      if ((Pinned >> J) & 1u)
        if (getReg(Row, J) != J + 1)
          return false;
  }
  return true;
}

class GoalChecker
    : public ::testing::TestWithParam<std::tuple<MachineKind, unsigned>> {
protected:
  MachineKind kind() const { return std::get<0>(GetParam()); }
  unsigned n() const { return std::get<1>(GetParam()); }
};

TEST_P(GoalChecker, NFactorialCheckerAgreesWithBruteForceOnEveryGoal) {
  Program Network = kind() == MachineKind::Cmov ? sortingNetworkCmov(n())
                                                : sortingNetworkMinMax(n());
  for (const GoalSpec &G : allGoals(n())) {
    Machine M(kind(), n(), /*Scratch=*/1, G);
    // A full sorting network satisfies every pinned-position goal.
    EXPECT_TRUE(isCorrectKernel(M, Network)) << G.name();
    EXPECT_TRUE(bruteForceCorrect(M, Network)) << G.name();

    // Truncations and random programs: the checker must agree with the
    // brute force on both verdicts, whichever they are.
    for (size_t Cut = 1; Cut <= 3 && Cut < Network.size(); ++Cut) {
      Program Trunc(Network.begin(), Network.end() - Cut);
      EXPECT_EQ(isCorrectKernel(M, Trunc), bruteForceCorrect(M, Trunc))
          << G.name() << " truncated by " << Cut;
    }
    Rng R(7000 + n() * 100 + static_cast<unsigned>(G.Kind) * 10 + G.K);
    for (int Trial = 0; Trial != 40; ++Trial) {
      Program P = randomProgram(M, R, 1 + R.below(12));
      ASSERT_EQ(isCorrectKernel(M, P), bruteForceCorrect(M, P))
          << G.name() << ": " << toString(P, n());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Goals, GoalChecker,
    ::testing::Combine(::testing::Values(MachineKind::Cmov,
                                         MachineKind::MinMax),
                       ::testing::Values(3u, 4u)));

TEST(GoalChecker, SortCoincidesWithFullWidthTopKAndPartialSort) {
  // top-n and partial-sort-n pin every position, so their verdicts must
  // equal the sort goal's on arbitrary programs.
  const unsigned N = 3;
  Machine Sort(MachineKind::Cmov, N);
  Machine Top(MachineKind::Cmov, N, 1, GoalSpec::topK(N));
  Machine Part(MachineKind::Cmov, N, 1, GoalSpec::partialSort(N));
  Rng R(99);
  for (int Trial = 0; Trial != 60; ++Trial) {
    Program P = randomProgram(Sort, R, 1 + R.below(14));
    bool Ref = isCorrectKernel(Sort, P);
    EXPECT_EQ(isCorrectKernel(Top, P), Ref);
    EXPECT_EQ(isCorrectKernel(Part, P), Ref);
  }
}

//===----------------------------------------------------------------------===//
// 0-1 certifier: threshold predicates
//===----------------------------------------------------------------------===//

TEST(GoalZeroOne, ThresholdCertifierAgreesWithNFactorialChecker) {
  // Every min/max program is monotone, so the certifier is applicable to
  // all of them; its per-register threshold verdict must match the n!
  // checker on the reference network, near-miss truncations, and random
  // mutants — for every goal in the family.
  for (unsigned N = 3; N <= 4; ++N) {
    Program Network = sortingNetworkMinMax(N);
    for (const GoalSpec &G : allGoals(N)) {
      Machine M(MachineKind::MinMax, N, /*Scratch=*/1, G);

      ZeroOneReport Ref = zeroOneCheck(M, Network);
      ASSERT_TRUE(Ref.Applicable) << G.name();
      EXPECT_TRUE(Ref.Correct) << G.name();
      EXPECT_EQ(Ref.VectorCount, 1u << N) << G.name();

      Rng R(4200 + N * 100 + static_cast<unsigned>(G.Kind) * 10 + G.K);
      for (int Trial = 0; Trial != 100; ++Trial) {
        // Mutant: the network with one instruction replaced (or a fully
        // random program every fourth trial).
        Program P = Network;
        if (Trial % 4 == 3) {
          P = randomProgram(M, R, 1 + R.below(10));
        } else {
          const std::vector<Instr> &Alphabet = M.instructions();
          P[R.below(P.size())] = Alphabet[R.below(Alphabet.size())];
        }
        ZeroOneReport ZO = zeroOneCheck(M, P);
        ASSERT_TRUE(ZO.Applicable);
        ASSERT_EQ(ZO.Correct, isCorrectKernel(M, P))
            << G.name() << ": " << toString(P, N);
      }
    }
  }
}

TEST(GoalZeroOne, InapplicableToCmovRegardlessOfGoal) {
  Machine M(MachineKind::Cmov, 3, 1, GoalSpec::selectK(2));
  ZeroOneReport ZO = zeroOneCheck(M, sortingNetworkCmov(3));
  EXPECT_FALSE(ZO.Applicable);
}

//===----------------------------------------------------------------------===//
// Widened key-payload model
//===----------------------------------------------------------------------===//

TEST(GoalKeyVal, NetworkCarriesPayloadsWithTheirKeys) {
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::MinMax}) {
    for (unsigned N = 3; N <= 4; ++N) {
      Program Network =
          Kind == MachineKind::Cmov ? sortingNetworkCmov(N)
                                    : sortingNetworkMinMax(N);
      for (const GoalSpec &G : allGoals(N)) {
        Machine M(Kind, N, /*Scratch=*/1, G);
        const uint32_t Pinned = G.pinnedPositions(N);
        for (const std::vector<int> &Perm : allPermutations(N)) {
          uint64_t Out = M.runKeyVal(M.packInitialKeyVal(Perm), Network);
          for (unsigned J = 0; J != N; ++J) {
            if (!((Pinned >> J) & 1u))
              continue;
            ASSERT_EQ(getKvKey(Out, J), J + 1);
            // The payload is the input position that carried key j+1.
            unsigned Origin = static_cast<unsigned>(
                std::find(Perm.begin(), Perm.end(), static_cast<int>(J + 1)) -
                Perm.begin());
            ASSERT_EQ(getKvPayload(Out, J), Origin);
          }
        }
        EXPECT_TRUE(isCorrectKeyValKernel(M, Network)) << G.name();
      }
    }
  }
}

TEST(GoalKeyVal, KeyHalfAgreesWithTheScalarModel) {
  // Projecting the widened row to its keys must reproduce the scalar
  // machine exactly, for arbitrary programs — the key-payload model is a
  // conservative extension.
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::MinMax}) {
    Machine M(Kind, 4);
    Rng R(31337);
    for (int Trial = 0; Trial != 40; ++Trial) {
      Program P = randomProgram(M, R, 1 + R.below(14));
      for (const std::vector<int> &Perm : allPermutations(4)) {
        uint32_t Narrow = M.run(M.packInitial(Perm), P);
        uint64_t Wide = M.runKeyVal(M.packInitialKeyVal(Perm), P);
        for (unsigned Reg = 0; Reg != M.numRegs(); ++Reg)
          ASSERT_EQ(getKvKey(Wide, Reg), getReg(Narrow, Reg))
              << toString(P, 4);
        ASSERT_EQ((Wide & KvFlagLT) != 0, (Narrow & FlagLT) != 0);
        ASSERT_EQ((Wide & KvFlagGT) != 0, (Narrow & FlagGT) != 0);
      }
    }
  }
}

TEST(GoalKeyVal, CheckerAgreesWithScalarCheckerOnRandomPrograms) {
  // Keys are distinct permutations, and every instruction moves (key,
  // payload) fields whole — so key-payload correctness must coincide with
  // scalar goal correctness on every program. The checker pins this.
  for (const GoalSpec &G : allGoals(3)) {
    Machine M(MachineKind::Cmov, 3, /*Scratch=*/1, G);
    Program Network = sortingNetworkCmov(3);
    EXPECT_EQ(isCorrectKeyValKernel(M, Network), isCorrectKernel(M, Network));
    for (size_t Cut = 1; Cut <= 3; ++Cut) {
      Program Trunc(Network.begin(), Network.end() - Cut);
      EXPECT_EQ(isCorrectKeyValKernel(M, Trunc), isCorrectKernel(M, Trunc))
          << G.name() << " truncated by " << Cut;
    }
    Rng R(555 + static_cast<unsigned>(G.Kind) * 10 + G.K);
    for (int Trial = 0; Trial != 30; ++Trial) {
      Program P = randomProgram(M, R, 1 + R.below(12));
      ASSERT_EQ(isCorrectKeyValKernel(M, P), isCorrectKernel(M, P))
          << G.name() << ": " << toString(P, 3);
    }
  }
}

//===----------------------------------------------------------------------===//
// Packed-pair JIT
//===----------------------------------------------------------------------===//

TEST(GoalPairJit, PackPairRoundTripsAndOrdersByKey) {
  const int32_t Keys[] = {-100000, -1, 0, 1, 100000};
  for (int32_t K : Keys) {
    EXPECT_EQ(pairKey(packPair(K, 0xABCDEFu)), K);
    EXPECT_EQ(pairPayload(packPair(K, 0xABCDEFu)), 0xABCDEFu);
  }
  // Signed 64-bit comparison orders by key first, payload as tiebreak.
  EXPECT_LT(packPair(-5, 0xFFFFFFFFu), packPair(-4, 0u));
  EXPECT_LT(packPair(7, 1u), packPair(7, 2u));
  EXPECT_LT(packPair(-1, 0xFFFFFFFFu), packPair(0, 0u));
}

void checkPairKernel(MachineKind Kind, unsigned N, const Program &P) {
  std::unique_ptr<JitPairKernel> Jit = JitPairKernel::compile(Kind, N, P);
  ASSERT_TRUE(Jit) << "jitPairSupported claimed support";
  EXPECT_GT(Jit->codeSize(), 0u);

  Rng R(9000 + N);
  for (int Trial = 0; Trial != 300; ++Trial) {
    std::vector<int64_t> Pairs(N);
    for (unsigned I = 0; I != N; ++I) {
      // Small key range forces duplicate keys; payload = input position.
      int32_t Key = static_cast<int32_t>(R.range(-3, 3));
      if (Trial % 3 == 0) // Every third trial: full-range keys.
        Key = static_cast<int32_t>(R.range(-1000000, 1000000));
      Pairs[I] = packPair(Key, I);
    }

    std::vector<int64_t> FromJit = Pairs;
    (*Jit)(FromJit.data());

    std::vector<int64_t> FromInterp = Pairs;
    interpretPairKernel(Kind, N, P, FromInterp.data());
    ASSERT_EQ(FromJit, FromInterp);

    // A full sorting network sorts packed lanes exactly like std::sort
    // (the payload tiebreak makes the order total, so the result is
    // unique).
    std::vector<int64_t> Reference = Pairs;
    std::sort(Reference.begin(), Reference.end());
    ASSERT_EQ(FromJit, Reference);
  }
}

TEST(GoalPairJit, CmovNetworkMatchesInterpreterAndStdSort) {
  if (!jitPairSupported(MachineKind::Cmov))
    GTEST_SKIP() << "no pair JIT on this host";
  for (unsigned N = 2; N <= 5; ++N)
    checkPairKernel(MachineKind::Cmov, N, sortingNetworkCmov(N));
}

TEST(GoalPairJit, MinMaxNetworkMatchesInterpreterAndStdSort) {
  if (!jitPairSupported(MachineKind::MinMax))
    GTEST_SKIP() << "no SSE4.2 pair JIT on this host";
  for (unsigned N = 2; N <= 5; ++N)
    checkPairKernel(MachineKind::MinMax, N, sortingNetworkMinMax(N));
}

TEST(GoalPairJit, InterpreterSortsPackedLanesWithoutJitSupport) {
  // The interpreter path has no host requirements; pin it independently.
  for (unsigned N = 2; N <= 4; ++N) {
    Program Network = sortingNetworkMinMax(N);
    Rng R(77);
    for (int Trial = 0; Trial != 100; ++Trial) {
      std::vector<int64_t> Pairs(N);
      for (unsigned I = 0; I != N; ++I)
        Pairs[I] = packPair(static_cast<int32_t>(R.range(-2, 2)), I);
      std::vector<int64_t> Reference = Pairs;
      std::sort(Reference.begin(), Reference.end());
      interpretPairKernel(MachineKind::MinMax, N, Network, Pairs.data());
      ASSERT_EQ(Pairs, Reference);
    }
  }
}

} // namespace
