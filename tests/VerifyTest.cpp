//===- tests/VerifyTest.cpp - Verifier-module tests --------------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/Verify.h"

#include "kernels/ReferenceKernels.h"
#include "support/Permutations.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(Verify, CounterexampleIsEmptyForCorrectKernels) {
  Machine M(MachineKind::Cmov, 3);
  EXPECT_TRUE(findCounterexample(M, sortingNetworkCmov(3)).empty());
  EXPECT_TRUE(findCounterexample(M, paperSynthCmov3()).empty());
}

TEST(Verify, CounterexampleActuallyFails) {
  // Break the network by dropping its last instruction; the returned
  // permutation must demonstrably mis-sort.
  Machine M(MachineKind::Cmov, 3);
  Program Broken = sortingNetworkCmov(3);
  Broken.pop_back();
  std::vector<int> Witness = findCounterexample(M, Broken);
  ASSERT_FALSE(Witness.empty());
  uint32_t Row = M.run(M.packInitial(Witness), Broken);
  EXPECT_FALSE(M.isSorted(Row));
}

TEST(Verify, EmptyProgramOnlySortsTheIdentity) {
  Machine M(MachineKind::Cmov, 3);
  Program Empty;
  EXPECT_FALSE(isCorrectKernel(M, Empty));
  std::vector<int> Witness = findCounterexample(M, Empty);
  EXPECT_NE(Witness, (std::vector<int>{1, 2, 3}))
      << "the identity permutation is already sorted";
}

TEST(Verify, RunOnValuesMatchesPackedOnDomain) {
  Machine M(MachineKind::MinMax, 4);
  Program P = sortingNetworkMinMax(4);
  for (const std::vector<int> &Perm : allPermutations(4)) {
    std::vector<long long> Wide(Perm.begin(), Perm.end());
    std::vector<long long> Out = runOnValues(M, P, Wide);
    uint32_t Row = M.run(M.packInitial(Perm), P);
    for (unsigned Reg = 0; Reg != 4; ++Reg)
      EXPECT_EQ(Out[Reg], static_cast<long long>(getReg(Row, Reg)));
  }
}

TEST(Verify, RunOnValuesHandlesExtremes) {
  Machine M(MachineKind::Cmov, 3);
  Program P = sortingNetworkCmov(3);
  std::vector<long long> Out = runOnValues(
      M, P, {(long long)INT64_MAX, (long long)INT64_MIN, 0});
  EXPECT_TRUE(std::is_sorted(Out.begin(), Out.end()));
  EXPECT_EQ(Out.front(), INT64_MIN);
  EXPECT_EQ(Out.back(), INT64_MAX);
}

TEST(Verify, InitialFlagStateMatters) {
  // A bare conditional move is a no-op from the clear-flag state but fires
  // when the caller claims lt is set.
  Machine M(MachineKind::Cmov, 2);
  Program P = {Instr{Opcode::CMovL, 0, 1}};
  std::vector<long long> Clear =
      runOnValuesWithState(M, P, {7, 3}, 0, false, false);
  EXPECT_EQ(Clear, (std::vector<long long>{7, 3}));
  std::vector<long long> LtSet =
      runOnValuesWithState(M, P, {7, 3}, 0, true, false);
  EXPECT_EQ(LtSet, (std::vector<long long>{3, 3}));
}

TEST(Verify, ScratchInitPropagates) {
  Machine M(MachineKind::Cmov, 2);
  Program P = {Instr{Opcode::Mov, 0, 2}}; // r1 := s1.
  std::vector<long long> Out =
      runOnValuesWithState(M, P, {7, 3}, 42, false, false);
  EXPECT_EQ(Out[0], 42);
}

TEST(Verify, EquivalenceIsReflexiveSymmetricOnSamples) {
  Machine M(MachineKind::Cmov, 3);
  Program A = sortingNetworkCmov(3);
  Program B = paperSynthCmov3();
  EXPECT_TRUE(areEquivalentKernels(M, A, A));
  EXPECT_EQ(areEquivalentKernels(M, A, B), areEquivalentKernels(M, B, A));
}

TEST(Verify, RobustKernelIsAlsoModelCorrect) {
  // Robustness strictly refines the n! check on all reference kernels.
  for (unsigned N = 2; N <= 4; ++N) {
    Machine M(MachineKind::Cmov, N);
    Program P = sortingNetworkCmov(N);
    EXPECT_TRUE(isRobustKernel(M, P));
    EXPECT_TRUE(isCorrectKernel(M, P));
    Machine MM(MachineKind::MinMax, N);
    EXPECT_TRUE(isRobustKernel(MM, sortingNetworkMinMax(N)));
  }
}

} // namespace
