//===- tests/ServiceTest.cpp - Cache + synthesis service tests --------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The service layer (DESIGN.md section 12): the sks-outcome text format,
// the content-addressed kernel cache and its trust model (version stamps,
// corrupt-entry rejection, re-verification on load), the SynthService
// request path (cache short-circuit, in-flight dedup, admission control,
// shutdown), and the sks-serve wire protocol.
//
//===----------------------------------------------------------------------===//

#include "cache/KernelCache.h"
#include "driver/OutcomeIO.h"
#include "service/Protocol.h"
#include "service/SynthService.h"

#include "kernels/KernelIO.h"
#include "kernels/ReferenceKernels.h"
#include "verify/Verify.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <gtest/gtest.h>

using namespace sks;

namespace {

/// A fresh scratch directory, removed on scope exit.
class TempDir {
public:
  explicit TempDir(const std::string &Tag) {
    Dir = std::filesystem::temp_directory_path() /
          ("sks_service_test_" + Tag + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  ~TempDir() { std::filesystem::remove_all(Dir); }
  std::string path() const { return Dir.string(); }

private:
  std::filesystem::path Dir;
};

/// A verified outcome carrying a genuinely correct kernel (re-verification
/// on cache load must pass).
SynthOutcome makeVerifiedOutcome(unsigned N) {
  SynthOutcome O;
  O.BackendName = "test";
  O.Status = SynthStatus::Optimal;
  O.Verified = true;
  O.Seconds = 0.125;
  O.Kernel = sortingNetworkCmov(N);
  O.Stats.emplace_back("states_expanded", 42);
  O.Stats.emplace_back("dedup_hits", 7);
  return O;
}

SynthRequest makeRequest(unsigned N, const std::string &Policy = "enum") {
  SynthRequest Req;
  Req.N = N;
  Req.Goal = SynthGoal::MinLength;
  Req.BackendPolicy = Policy;
  return Req;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spew(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

//===----------------------------------------------------------------------===//
// sks-outcome serialization
//===----------------------------------------------------------------------===//

TEST(OutcomeIO, RoundTripIsByteIdentical) {
  SynthOutcome O = makeVerifiedOutcome(3);
  std::string Text = serializeOutcome(O, 3);
  SynthOutcome Loaded;
  ASSERT_TRUE(deserializeOutcome(Text, 3, Loaded));
  EXPECT_EQ(Loaded.BackendName, O.BackendName);
  EXPECT_EQ(Loaded.Status, O.Status);
  EXPECT_EQ(Loaded.Verified, O.Verified);
  EXPECT_EQ(Loaded.Kernel, O.Kernel);
  EXPECT_EQ(Loaded.Stats, O.Stats);
  EXPECT_DOUBLE_EQ(Loaded.Seconds, O.Seconds);
  // The determinism contract cache entries rely on: stats keep their
  // order and seconds is pinned, so serialize ∘ deserialize is identity.
  EXPECT_EQ(serializeOutcome(Loaded, 3), Text);
}

TEST(OutcomeIO, FormatIsPinned) {
  SynthOutcome O = makeVerifiedOutcome(2);
  O.Stats.clear();
  O.Seconds = 1.5;
  EXPECT_EQ(serializeOutcome(O, 2),
            "# sks-outcome v1\n"
            "# backend: test\n"
            "# status: optimal\n"
            "# verified: yes\n"
            "# seconds: 1.500000\n"
            "# length: 4\n" +
                toString(O.Kernel, 2));
}

TEST(OutcomeIO, AllStatusNamesRoundTrip) {
  for (SynthStatus S :
       {SynthStatus::Found, SynthStatus::Optimal, SynthStatus::Exhausted,
        SynthStatus::TimedOut, SynthStatus::Cancelled, SynthStatus::Infeasible,
        SynthStatus::Rejected}) {
    SynthStatus Back = SynthStatus::Found;
    ASSERT_TRUE(statusFromName(statusName(S), Back));
    EXPECT_EQ(Back, S);
  }
  SynthStatus Out;
  EXPECT_FALSE(statusFromName("bogus", Out));
}

TEST(OutcomeIO, RejectsTruncatedAndMalformed) {
  SynthOutcome O = makeVerifiedOutcome(3);
  std::string Text = serializeOutcome(O, 3);
  SynthOutcome Sink;
  EXPECT_FALSE(deserializeOutcome("", 3, Sink));
  EXPECT_FALSE(deserializeOutcome("# sks-outcome v2\n", 3, Sink))
      << "future version must not parse as v1";
  // The torn-write signature: the declared length disagrees with the
  // body. Drop the last instruction line.
  std::string Torn = Text.substr(0, Text.rfind("cmov"));
  EXPECT_FALSE(deserializeOutcome(Torn, 3, Sink));
  // Mandatory headers.
  for (const char *Header :
       {"# backend:", "# status:", "# verified:", "# seconds:", "# length:"}) {
    std::string Cut = Text;
    size_t At = Cut.find(Header);
    ASSERT_NE(At, std::string::npos);
    size_t End = Cut.find('\n', At);
    Cut.erase(At, End - At + 1);
    EXPECT_FALSE(deserializeOutcome(Cut, 3, Sink)) << "without " << Header;
  }
  // A failed parse never partially mutates the destination.
  SynthOutcome Untouched = makeVerifiedOutcome(2);
  SynthOutcome Probe = Untouched;
  EXPECT_FALSE(deserializeOutcome(Torn, 3, Probe));
  EXPECT_EQ(Probe.Kernel, Untouched.Kernel);
  EXPECT_EQ(Probe.BackendName, Untouched.BackendName);
}

//===----------------------------------------------------------------------===//
// Kernel cache
//===----------------------------------------------------------------------===//

TEST(KernelCache, CanonicalRequestCoversIdentityNotHints) {
  SynthRequest Req = makeRequest(3);
  std::string Key = KernelCache::canonicalRequest(Req);
  EXPECT_EQ(Key, "sks-request v2 isa=cmov n=3 m=1 goal=minlength pred=sort "
                 "bound=12 backend=enum");

  // Execution hints do not change the artifact, so they are not part of
  // the key...
  SynthRequest Hints = Req;
  Hints.TimeoutSeconds = 99;
  Hints.NumThreads = 8;
  EXPECT_EQ(KernelCache::canonicalRequest(Hints), Key);

  // ...while every identity-bearing field does.
  SynthRequest Other = Req;
  Other.N = 4;
  EXPECT_NE(KernelCache::canonicalRequest(Other), Key);
  Other = Req;
  Other.Kind = MachineKind::MinMax;
  EXPECT_NE(KernelCache::canonicalRequest(Other), Key);
  Other = Req;
  Other.Goal = SynthGoal::FirstKernel;
  EXPECT_NE(KernelCache::canonicalRequest(Other), Key);
  Other = Req;
  Other.MaxLength = 9;
  EXPECT_NE(KernelCache::canonicalRequest(Other), Key);
  Other = Req;
  Other.BackendPolicy = "portfolio";
  EXPECT_NE(KernelCache::canonicalRequest(Other), Key);
  Other = Req;
  Other.GoalPred = GoalSpec::selectK(2);
  EXPECT_NE(KernelCache::canonicalRequest(Other), Key)
      << "the goal predicate selects a distinct artifact";

  // An explicit bound equal to the default network bound is the same
  // artifact (lengthBound() collapses them).
  SynthRequest Explicit = Req;
  Explicit.MaxLength = Req.lengthBound();
  EXPECT_EQ(KernelCache::canonicalRequest(Explicit), Key);
}

TEST(KernelCache, MissThenStoreThenHit) {
  TempDir Dir("roundtrip");
  KernelCache Cache(CacheOptions{Dir.path(), ""});
  ASSERT_TRUE(Cache.valid());

  SynthRequest Req = makeRequest(2);
  SynthOutcome Out;
  EXPECT_FALSE(Cache.lookup(Req, Out));
  EXPECT_EQ(Cache.stats().Misses, 1u);

  SynthOutcome Stored = makeVerifiedOutcome(2);
  ASSERT_TRUE(Cache.store(Req, Stored));
  EXPECT_EQ(Cache.stats().Stores, 1u);

  ASSERT_TRUE(Cache.lookup(Req, Out));
  EXPECT_EQ(Cache.stats().Hits, 1u);
  EXPECT_EQ(Out.Kernel, Stored.Kernel);
  EXPECT_EQ(Out.Status, SynthStatus::Optimal);
  EXPECT_TRUE(Out.Verified);
  EXPECT_EQ(Out.Stats, Stored.Stats);

  // A second cache instance over the same directory sees the entry:
  // persistence, not memoization.
  KernelCache Reopened(CacheOptions{Dir.path(), ""});
  ASSERT_TRUE(Reopened.lookup(Req, Out));
  EXPECT_EQ(Out.Kernel, Stored.Kernel);

  // A different request misses despite the populated directory.
  SynthOutcome Sink;
  EXPECT_FALSE(Reopened.lookup(makeRequest(3), Sink));
}

TEST(KernelCache, RefusesToStoreUnverifiedOutcomes) {
  TempDir Dir("unverified");
  KernelCache Cache(CacheOptions{Dir.path(), ""});
  SynthRequest Req = makeRequest(2);

  SynthOutcome NotVerified = makeVerifiedOutcome(2);
  NotVerified.Verified = false;
  EXPECT_FALSE(Cache.store(Req, NotVerified));

  SynthOutcome NoKernel;
  NoKernel.Status = SynthStatus::TimedOut;
  EXPECT_FALSE(Cache.store(Req, NoKernel));

  EXPECT_EQ(Cache.stats().Stores, 0u);
  SynthOutcome Sink;
  EXPECT_FALSE(Cache.lookup(Req, Sink));
}

TEST(KernelCache, VerifierVersionBumpInvalidates) {
  TempDir Dir("stale");
  SynthRequest Req = makeRequest(2);
  {
    KernelCache Old(CacheOptions{Dir.path(), "sks-verify test v1"});
    ASSERT_TRUE(Old.store(Req, makeVerifiedOutcome(2)));
    SynthOutcome Out;
    EXPECT_TRUE(Old.lookup(Req, Out));
  }
  // A new verifier identity distrusts the old stamp: the entry is stale,
  // the lookup misses, and the file is left for resynthesis to replace.
  // Counted as StaleVerifier, distinct from the format-version counter.
  KernelCache New(CacheOptions{Dir.path(), "sks-verify test v2"});
  SynthOutcome Out;
  EXPECT_FALSE(New.lookup(Req, Out));
  EXPECT_EQ(New.stats().StaleVerifier, 1u);
  EXPECT_EQ(New.stats().StaleVersion, 0u);
  EXPECT_TRUE(std::filesystem::exists(New.entryPath(Req)));

  // Resynthesis under the new identity heals the entry in place.
  ASSERT_TRUE(New.store(Req, makeVerifiedOutcome(2)));
  EXPECT_TRUE(New.lookup(Req, Out));
}

TEST(KernelCache, FormatVersionBumpInvalidatesAndHeals) {
  // A pre-bump entry file — the v1 on-disk layout — at the path the
  // CURRENT format computes for the request must be a transparent miss,
  // counted as StaleVersion (not corrupt, not verify-failed), and healed
  // by the next store.
  TempDir Dir("format_bump");
  KernelCache Cache(CacheOptions{Dir.path(), ""});
  SynthRequest Req = makeRequest(2);

  SynthOutcome Old = makeVerifiedOutcome(2);
  std::string V1Entry = "# sks-cache v1\n# verifier: " +
                        std::string(verifierIdentity()) +
                        "\n# request: sks-request v1 isa=cmov n=2 m=1 "
                        "goal=minlength bound=4 backend=enum\n" +
                        serializeOutcome(Old, 2);
  spew(Cache.entryPath(Req), V1Entry);

  SynthOutcome Out;
  EXPECT_FALSE(Cache.lookup(Req, Out));
  EXPECT_EQ(Cache.stats().StaleVersion, 1u);
  EXPECT_EQ(Cache.stats().StaleVerifier, 0u);
  EXPECT_EQ(Cache.stats().Corrupt, 0u);
  EXPECT_EQ(Cache.stats().VerifyFailed, 0u);

  // The resynthesized store overwrites the stale file and serves.
  ASSERT_TRUE(Cache.store(Req, makeVerifiedOutcome(2)));
  EXPECT_TRUE(Cache.lookup(Req, Out));
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

TEST(KernelCache, NonSortGoalRoundTrip) {
  // Cold miss then warm hit for a non-sort goal: the goal predicate is a
  // first-class identity field, and re-verification on load runs against
  // the goal-carrying machine. A full sorting kernel satisfies select-2.
  TempDir Dir("goal_roundtrip");
  KernelCache Cache(CacheOptions{Dir.path(), ""});
  SynthRequest Req = makeRequest(3);
  Req.GoalPred = GoalSpec::selectK(2);

  SynthOutcome Out;
  EXPECT_FALSE(Cache.lookup(Req, Out));
  ASSERT_TRUE(Cache.store(Req, makeVerifiedOutcome(3)));
  EXPECT_TRUE(Cache.lookup(Req, Out));
  EXPECT_EQ(Cache.stats().Hits, 1u);

  // The sort-goal request with otherwise identical fields is a different
  // artifact: it must miss.
  SynthOutcome Sink;
  EXPECT_FALSE(Cache.lookup(makeRequest(3), Sink));
}

TEST(KernelCache, RejectsCorruptEntries) {
  TempDir Dir("corrupt");
  KernelCache Cache(CacheOptions{Dir.path(), ""});
  SynthRequest Req = makeRequest(2);
  ASSERT_TRUE(Cache.store(Req, makeVerifiedOutcome(2)));
  std::string Path = Cache.entryPath(Req);
  std::string Good = slurp(Path);
  ASSERT_FALSE(Good.empty());

  // A torn write: the file ends mid-entry. Must read as a miss, counted
  // as corrupt, never as a partial outcome.
  SynthOutcome Out;
  spew(Path, Good.substr(0, Good.size() / 2));
  EXPECT_FALSE(Cache.lookup(Req, Out));
  EXPECT_GE(Cache.stats().Corrupt, 1u);

  // Garbage bytes.
  spew(Path, "not a cache entry at all\n");
  EXPECT_FALSE(Cache.lookup(Req, Out));

  // Restored intact: served again.
  spew(Path, Good);
  EXPECT_TRUE(Cache.lookup(Req, Out));
}

TEST(KernelCache, ReVerifiesKernelsOnLoadAndDeletesLiars) {
  TempDir Dir("liar");
  KernelCache Cache(CacheOptions{Dir.path(), ""});
  SynthRequest Req = makeRequest(2);
  ASSERT_TRUE(Cache.store(Req, makeVerifiedOutcome(2)));
  std::string Path = Cache.entryPath(Req);

  // Forge a well-formed entry whose kernel claims "verified" but does not
  // sort. The parse succeeds; the re-verification gate must catch it and
  // delete the entry — the cache never widens the trust boundary.
  SynthOutcome Lie = makeVerifiedOutcome(2);
  Lie.Kernel.clear();
  ASSERT_TRUE(parseProgram("mov r1 r2\nmov r2 r1\nmov r1 r2\nmov r2 r1\n", 2,
                           Lie.Kernel));
  std::string Entry = slurp(Path);
  std::string Forged = Entry.substr(0, Entry.find("# sks-outcome")) +
                       serializeOutcome(Lie, 2);
  spew(Path, Forged);

  SynthOutcome Out;
  EXPECT_FALSE(Cache.lookup(Req, Out));
  EXPECT_EQ(Cache.stats().VerifyFailed, 1u);
  EXPECT_FALSE(std::filesystem::exists(Path))
      << "a lying entry must be evicted, not retried forever";
}

TEST(KernelCache, InvalidDirectoryDegradesToUncached) {
  KernelCache Cache(CacheOptions{"/proc/definitely/not/writable", ""});
  EXPECT_FALSE(Cache.valid());
  SynthOutcome Out;
  EXPECT_FALSE(Cache.lookup(makeRequest(2), Out));
  EXPECT_FALSE(Cache.store(makeRequest(2), makeVerifiedOutcome(2)));
}

//===----------------------------------------------------------------------===//
// SynthService
//===----------------------------------------------------------------------===//

TEST(SynthService, WarmHitRunsNoBackend) {
  TempDir Dir("service_warm");
  std::atomic<unsigned> BackendRuns{0};

  ServiceOptions Opts;
  Opts.CacheDir = Dir.path();
  Opts.Workers = 1;
  Opts.Runner = [&](const SynthRequest &Req) {
    BackendRuns.fetch_add(1);
    return makeVerifiedOutcome(Req.N);
  };
  SynthService Service(Opts);

  bool Cached = true;
  SynthOutcome Cold = Service.synthesize(makeRequest(2), &Cached);
  EXPECT_TRUE(Cold.Verified);
  EXPECT_FALSE(Cached);
  EXPECT_EQ(BackendRuns.load(), 1u);

  // The acceptance pin: the second identical request is answered from
  // the cache with ZERO backend invocations.
  SynthOutcome Warm = Service.synthesize(makeRequest(2), &Cached);
  EXPECT_TRUE(Cached);
  EXPECT_EQ(BackendRuns.load(), 1u) << "a warm hit must not run a backend";
  EXPECT_EQ(Warm.Kernel, Cold.Kernel);
  EXPECT_EQ(Service.stats().CacheHits, 1u);
  EXPECT_EQ(Service.stats().Synthesized, 1u);

  // A distinct request still synthesizes.
  Service.synthesize(makeRequest(3));
  EXPECT_EQ(BackendRuns.load(), 2u);
}

TEST(SynthService, PolicyAndTimeoutDefaultsApply) {
  std::mutex SeenMutex;
  std::string SeenPolicy;
  double SeenTimeout = -1;

  ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.DefaultPolicy = "smt";
  Opts.DefaultTimeoutSeconds = 42;
  Opts.Runner = [&](const SynthRequest &Req) {
    std::lock_guard<std::mutex> Lock(SeenMutex);
    SeenPolicy = Req.BackendPolicy;
    SeenTimeout = Req.TimeoutSeconds;
    return makeVerifiedOutcome(Req.N);
  };
  SynthService Service(Opts);

  SynthRequest Req = makeRequest(2);
  Req.BackendPolicy.clear();
  Req.TimeoutSeconds = 0;
  Service.synthesize(Req);
  EXPECT_EQ(SeenPolicy, "smt");
  EXPECT_DOUBLE_EQ(SeenTimeout, 42);

  SynthRequest Explicit = makeRequest(2, "enum");
  Explicit.TimeoutSeconds = 7;
  Service.synthesize(Explicit);
  EXPECT_EQ(SeenPolicy, "enum");
  EXPECT_DOUBLE_EQ(SeenTimeout, 7);
}

/// A runner the test releases manually: every job blocks until release(),
/// so the test controls exactly when synthesis "finishes".
class GatedRunner {
public:
  SynthOutcome operator()(const SynthRequest &Req) {
    Started.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Cv.notify_all();
    }
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Released; });
    Runs.fetch_add(1, std::memory_order_relaxed);
    return makeVerifiedOutcome(Req.N);
  }

  void release() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Released = true;
    Cv.notify_all();
  }

  /// Blocks until \p K jobs have entered the runner.
  void awaitStarted(unsigned K) {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Started.load() >= K; });
  }

  unsigned runs() const { return Runs.load(); }

private:
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Released = false;
  std::atomic<unsigned> Started{0};
  std::atomic<unsigned> Runs{0};
};

TEST(SynthService, ConcurrentIdenticalRequestsCoalesce) {
  // N identical + M distinct requests submitted while synthesis is
  // blocked: exactly one run per distinct key, identical outcomes for
  // every coalesced waiter. (The tsan_service ctest entry replays this
  // under ThreadSanitizer.)
  constexpr unsigned Identical = 8, Distinct = 3;
  auto Gate = std::make_shared<GatedRunner>();

  ServiceOptions Opts;
  Opts.Workers = 4;
  Opts.MaxQueue = 0; // Unbounded: this test is about dedup, not admission.
  Opts.Runner = [Gate](const SynthRequest &Req) { return (*Gate)(Req); };
  SynthService Service(Opts);

  std::mutex DoneMutex;
  std::condition_variable DoneCv;
  unsigned Done = 0;
  std::vector<std::string> IdenticalKernels;
  auto Collect = [&](std::vector<std::string> *Into) {
    return [&, Into](const SynthOutcome &O, bool Cached) {
      std::lock_guard<std::mutex> Lock(DoneMutex);
      EXPECT_FALSE(Cached);
      EXPECT_TRUE(O.Verified);
      if (Into)
        Into->push_back(toString(O.Kernel, 2));
      ++Done;
      DoneCv.notify_all();
    };
  };

  // Submit from multiple client threads to exercise the dedup race.
  std::vector<std::thread> Clients;
  for (unsigned I = 0; I != Identical; ++I)
    Clients.emplace_back([&] {
      Service.submit(makeRequest(2), Collect(&IdenticalKernels));
    });
  for (unsigned I = 0; I != Distinct; ++I)
    Clients.emplace_back([&, I] {
      SynthRequest Req = makeRequest(2);
      Req.MaxLength = 5 + I; // Distinct bound ⇒ distinct cache key.
      Service.submit(Req, Collect(nullptr));
    });
  for (std::thread &T : Clients)
    T.join();

  // All keys are registered; release the gate and wait for every
  // completion to fire.
  Gate->release();
  {
    std::unique_lock<std::mutex> Lock(DoneMutex);
    DoneCv.wait(Lock, [&] { return Done == Identical + Distinct; });
  }

  // Exactly one synthesis per distinct key; the identical batch shares
  // one outcome.
  EXPECT_EQ(Gate->runs(), 1 + Distinct);
  EXPECT_EQ(Service.stats().Synthesized, 1u + Distinct);
  EXPECT_GE(Service.stats().Coalesced, Identical - 1);
  ASSERT_EQ(IdenticalKernels.size(), Identical);
  for (const std::string &K : IdenticalKernels)
    EXPECT_EQ(K, IdenticalKernels.front());
}

TEST(SynthService, AdmissionControlRejectsOverload) {
  auto Gate = std::make_shared<GatedRunner>();
  ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.MaxQueue = 1;
  Opts.Runner = [Gate](const SynthRequest &Req) { return (*Gate)(Req); };
  SynthService Service(Opts);

  // First request occupies the single worker...
  std::atomic<unsigned> Finished{0};
  auto Count = [&](const SynthOutcome &, bool) { Finished.fetch_add(1); };
  Service.submit(makeRequest(2), Count);
  Gate->awaitStarted(1); // ...and has left the admission queue.

  // Second request fills the queue.
  SynthRequest Second = makeRequest(3);
  Service.submit(Second, Count);

  // Third request overflows: answered immediately with Rejected, in the
  // submitting thread, without waiting for a worker.
  SynthRequest Third = makeRequest(4);
  SynthStatus ThirdStatus = SynthStatus::Found;
  bool ThirdCached = true;
  Service.submit(Third, [&](const SynthOutcome &O, bool Cached) {
    ThirdStatus = O.Status;
    ThirdCached = Cached;
  });
  EXPECT_EQ(ThirdStatus, SynthStatus::Rejected);
  EXPECT_FALSE(ThirdCached);
  EXPECT_EQ(Service.stats().Rejected, 1u);

  // A duplicate of an in-flight request coalesces instead of being
  // rejected — dedup takes precedence over admission control.
  Service.submit(makeRequest(3), Count);
  EXPECT_EQ(Service.stats().Rejected, 1u);
  EXPECT_EQ(Service.stats().Coalesced, 1u);

  Gate->release();
  // Destructor drains; all non-rejected completions fire.
  while (Finished.load() < 3)
    std::this_thread::yield();
}

TEST(SynthService, ShutdownCancelsQueuedJobsButFiresEveryCompletion) {
  auto Gate = std::make_shared<GatedRunner>();
  std::mutex DoneMutex;
  std::vector<SynthStatus> Statuses;
  {
    ServiceOptions Opts;
    Opts.Workers = 1;
    Opts.Runner = [Gate](const SynthRequest &Req) {
      // Cooperative: give up as soon as the service cancels us.
      while (!Req.Stop.stopRequested())
        std::this_thread::yield();
      SynthOutcome O;
      O.BackendName = "test";
      O.Status = SynthStatus::Cancelled;
      return O;
    };
    SynthService Service(Opts);
    auto Record = [&](const SynthOutcome &O, bool) {
      std::lock_guard<std::mutex> Lock(DoneMutex);
      Statuses.push_back(O.Status);
    };
    Service.submit(makeRequest(2), Record); // Runs, spins on its token.
    Service.submit(makeRequest(3), Record); // Queued behind it.
    // Destroying the service requests stop on the running job and drains
    // the queued one; neither completion may be dropped.
  }
  ASSERT_EQ(Statuses.size(), 2u);
  for (SynthStatus S : Statuses)
    EXPECT_EQ(S, SynthStatus::Cancelled);
}

TEST(SynthService, EnumBackendColdThenWarmEndToEnd) {
  // The full stack with a real backend: a cold enumerative synthesis at
  // n = 2, then a warm hit that must return the identical verified
  // kernel from disk.
  TempDir Dir("service_e2e");
  SynthOutcome Cold, Warm;
  {
    ServiceOptions Opts;
    Opts.CacheDir = Dir.path();
    Opts.Workers = 1;
    SynthService Service(Opts);
    bool Cached = true;
    Cold = Service.synthesize(makeRequest(2, "enum"), &Cached);
    ASSERT_TRUE(Cold.Verified);
    EXPECT_FALSE(Cached);
    EXPECT_EQ(Cold.Status, SynthStatus::Optimal);
  }
  {
    // A fresh service over the same directory: persistence across
    // processes, not a warm in-memory structure.
    ServiceOptions Opts;
    Opts.CacheDir = Dir.path();
    Opts.Workers = 1;
    Opts.Runner = [](const SynthRequest &) -> SynthOutcome {
      ADD_FAILURE() << "warm path must not execute any synthesis";
      return {};
    };
    SynthService Service(Opts);
    bool Cached = false;
    Warm = Service.synthesize(makeRequest(2, "enum"), &Cached);
    EXPECT_TRUE(Cached);
  }
  EXPECT_EQ(Warm.Kernel, Cold.Kernel);
  EXPECT_EQ(Warm.Status, Cold.Status);
  Machine M(MachineKind::Cmov, 2);
  EXPECT_TRUE(isCorrectKernel(M, Warm.Kernel));
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, ParsesFullRequest) {
  WireRequest Wire;
  std::string Error;
  ASSERT_TRUE(parseRequestLine(
      R"({"id": "job-1", "n": 4, "isa": "minmax", "goal": "first",)"
      R"( "goal_pred": "select-2",)"
      R"( "backend": "enum", "timeout": 2.5, "max_length": 9, "threads": 3})",
      Wire, Error))
      << Error;
  EXPECT_EQ(Wire.Id, "\"job-1\"");
  EXPECT_EQ(Wire.Req.N, 4u);
  EXPECT_EQ(Wire.Req.Kind, MachineKind::MinMax);
  EXPECT_EQ(Wire.Req.Goal, SynthGoal::FirstKernel);
  EXPECT_EQ(Wire.Req.GoalPred, GoalSpec::selectK(2));
  EXPECT_EQ(Wire.Req.BackendPolicy, "enum");
  EXPECT_DOUBLE_EQ(Wire.Req.TimeoutSeconds, 2.5);
  EXPECT_EQ(Wire.Req.MaxLength, 9u);
  EXPECT_EQ(Wire.Req.NumThreads, 3u);
}

TEST(Protocol, DefaultsMatchSynthRequest) {
  WireRequest Wire;
  std::string Error;
  ASSERT_TRUE(parseRequestLine(R"({"n": 3})", Wire, Error)) << Error;
  EXPECT_TRUE(Wire.Id.empty());
  SynthRequest Defaults;
  EXPECT_EQ(Wire.Req.Kind, Defaults.Kind);
  EXPECT_EQ(Wire.Req.Goal, Defaults.Goal);
  EXPECT_EQ(Wire.Req.GoalPred, GoalSpec::sort());
  EXPECT_EQ(Wire.Req.BackendPolicy, Defaults.BackendPolicy);
  EXPECT_EQ(Wire.Req.MaxLength, Defaults.MaxLength);
}

TEST(Protocol, RejectsMalformedRequests) {
  struct Case {
    const char *Line;
    const char *Why;
  };
  const Case Cases[] = {
      {"", "empty line"},
      {"[1, 2]", "not an object"},
      {R"({"n": 3)", "unterminated object"},
      {R"({"id": 1})", "missing n"},
      {R"({"n": 1})", "n below range"},
      {R"({"n": 7})", "n above range"},
      {R"({"n": "3"})", "n as string"},
      {R"({"n": 3, "isa": "sse"})", "unknown isa"},
      {R"({"n": 3, "goal": "fastest"})", "unknown goal"},
      {R"({"n": 3, "goal_pred": "fastest"})", "unknown goal predicate"},
      {R"({"n": 3, "goal_pred": "select-4"})", "goal parameter above n"},
      {R"({"n": 3, "goal_pred": "top-0"})", "goal parameter below 1"},
      {R"({"n": 3, "goal_pred": 2})", "goal predicate as number"},
      {R"({"n": 3, "backend": "gpt"})", "unknown backend"},
      {R"({"n": 3, "timeout": -1})", "negative timeout"},
      {R"({"n": 3, "threads": 0})", "zero threads"},
      {R"({"n": 3, "frobnicate": true})", "unknown key"},
      {R"({"n": 3, "isa": {"kind": "cmov"}})", "nested object"},
      {R"({"n": 4, "isa": "hybrid"})", "hybrid is n = 3 only"},
      {R"({"n": 3} trailing)", "trailing garbage"},
      {R"({"id": bogus, "n": 3})", "id is not valid JSON"},
  };
  for (const Case &C : Cases) {
    WireRequest Wire;
    std::string Error;
    EXPECT_FALSE(parseRequestLine(C.Line, Wire, Error)) << C.Why;
    EXPECT_FALSE(Error.empty()) << C.Why;
  }
}

TEST(Protocol, RecoversIdFromInvalidRequests) {
  WireRequest Wire;
  std::string Error;
  EXPECT_FALSE(parseRequestLine(R"({"id": 7, "n": 99})", Wire, Error));
  EXPECT_EQ(Wire.Id, "7");
  EXPECT_EQ(errorLine(Wire.Id, "out of range"),
            R"({"id": 7, "error": "out of range"})");
  EXPECT_EQ(errorLine("", "unparseable"),
            R"({"id": null, "error": "unparseable"})");
}

TEST(Protocol, ResponseLineCarriesOutcomeAndAttribution) {
  SynthOutcome O = makeVerifiedOutcome(2);
  O.Stats = {{"states_expanded", 42}};
  std::string Line = responseLine("\"job\"", O, 2, /*Cached=*/true, 0.25);
  EXPECT_EQ(Line,
            "{\"id\": \"job\", \"backend\": \"test\", \"status\": "
            "\"optimal\", \"seconds\": 0.125000, \"verified\": true, "
            "\"length\": 4, \"cached\": true, \"service_seconds\": "
            "0.250000, \"kernel\": \"" +
                jsonEscape(toString(O.Kernel, 2)) +
                "\", \"stats\": {\"states_expanded\": 42}}");
  // And the response must itself parse as one flat JSON object minus the
  // keys the request schema does not know — spot-check the escaping.
  EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

} // namespace
