//===- tests/ZeroOneTest.cpp - 0-1-principle verifier tests ----------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The 0-1 static verifier (verify/ZeroOne.h) must agree with the n!
// permutation checker on EVERY min/max program — that equivalence is the
// theorem the verifier rests on, so it is pinned here on correct reference
// kernels, on systematically and randomly broken mutants of them, and
// through the Backend verification gate that routes min/max claims to it.
//
//===----------------------------------------------------------------------===//

#include "driver/Backend.h"
#include "kernels/ReferenceKernels.h"
#include "verify/Verify.h"
#include "verify/ZeroOne.h"

#include <gtest/gtest.h>
#include <random>

using namespace sks;

namespace {

/// Both verdicts for one program; asserts they agree before returning.
bool agreedVerdict(const Machine &M, const Program &P) {
  ZeroOneReport ZO = zeroOneCheck(M, P);
  EXPECT_TRUE(ZO.Applicable);
  EXPECT_EQ(ZO.VectorCount, 1u << M.numData());
  const bool Full = isCorrectKernel(M, P);
  EXPECT_EQ(ZO.Correct, Full)
      << "0-1 verdict diverges from the n! checker on:\n"
      << toString(P, M.numData());
  return Full;
}

TEST(ZeroOne, CertifiesReferenceMinMaxKernels) {
  for (unsigned N = 2; N <= 6; ++N) {
    Machine M(MachineKind::MinMax, N);
    EXPECT_TRUE(agreedVerdict(M, sortingNetworkMinMax(N))) << "n=" << N;
  }
  Machine M3(MachineKind::MinMax, 3);
  EXPECT_TRUE(agreedVerdict(M3, paperSynthMinMax3()));
}

TEST(ZeroOne, NotApplicableToCmovKernels) {
  Machine M(MachineKind::Cmov, 3);
  ZeroOneReport ZO = zeroOneCheck(M, paperSynthCmov3());
  EXPECT_FALSE(ZO.Applicable);
  EXPECT_FALSE(ZO.Correct);
}

TEST(ZeroOne, RejectsEveryTruncation) {
  // Dropping any single instruction from a minimal kernel breaks it; the
  // 0-1 verdict must track the n! verdict on each (all incorrect).
  Machine M(MachineKind::MinMax, 3);
  const Program Kernel = paperSynthMinMax3();
  for (size_t Drop = 0; Drop != Kernel.size(); ++Drop) {
    Program Mutant;
    for (size_t I = 0; I != Kernel.size(); ++I)
      if (I != Drop)
        Mutant.push_back(Kernel[I]);
    EXPECT_FALSE(agreedVerdict(M, Mutant)) << "dropped instr " << Drop;
  }
}

TEST(ZeroOne, AgreesWithFullCheckerOnRandomMutants) {
  // 50 random mutations per n: flip an opcode, retarget an operand, or
  // swap two instructions. Most mutants are wrong, a few stay correct —
  // either way the two verdicts must coincide exactly.
  std::mt19937 Rng(20260807);
  for (unsigned N : {3u, 4u}) {
    Machine M(MachineKind::MinMax, N);
    const Program Kernel = sortingNetworkMinMax(N);
    unsigned Broken = 0;
    for (int Trial = 0; Trial != 50; ++Trial) {
      Program Mutant = Kernel;
      const size_t At = Rng() % Mutant.size();
      Instr &I = Mutant[At];
      switch (Rng() % 4) {
      case 0:
        I.Op = I.Op == Opcode::Min ? Opcode::Max
               : I.Op == Opcode::Max ? Opcode::Min
                                     : Opcode::Mov;
        break;
      case 1:
        I.Dst = static_cast<uint8_t>(Rng() % M.numRegs());
        break;
      case 2:
        I.Src = static_cast<uint8_t>(Rng() % M.numRegs());
        break;
      case 3:
        std::swap(Mutant[At], Mutant[Rng() % Mutant.size()]);
        break;
      }
      if (!agreedVerdict(M, Mutant))
        ++Broken;
    }
    EXPECT_GT(Broken, 25u) << "mutation harness too tame at n=" << N;
  }
}

TEST(ZeroOne, BackendGateRoutesMinMaxThroughZeroOne) {
  // The enum backend synthesizes a min/max kernel; the driver's
  // verification gate must certify it via the 0-1 path and surface the
  // vector count in the outcome stats.
  SynthRequest Req;
  Req.N = 3;
  Req.Kind = MachineKind::MinMax;
  Req.Goal = SynthGoal::MinLength;
  SynthOutcome Outcome = createBackend("enum")->run(Req);
  ASSERT_EQ(Outcome.Status, SynthStatus::Optimal);
  EXPECT_TRUE(Outcome.Verified);
  bool SawVectors = false;
  for (const auto &[Key, Value] : Outcome.Stats)
    if (Key == "zero_one_vectors") {
      SawVectors = true;
      EXPECT_EQ(Value, 8u);
    }
  EXPECT_TRUE(SawVectors);

  // A cmov request takes the n! path: no zero_one_vectors stat.
  Req.Kind = MachineKind::Cmov;
  Outcome = createBackend("enum")->run(Req);
  ASSERT_EQ(Outcome.Status, SynthStatus::Optimal);
  EXPECT_TRUE(Outcome.Verified);
  for (const auto &[Key, Value] : Outcome.Stats)
    EXPECT_NE(Key, "zero_one_vectors");
}

} // namespace
