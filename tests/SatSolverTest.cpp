//===- tests/SatSolverTest.cpp - CDCL solver tests --------------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sat/SatSolver.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(SatSolver, TrivialSat) {
  SatSolver S;
  int A = S.newVar(), B = S.newVar();
  S.addBinary(A, B);
  S.addUnit(-A);
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.valueOf(A));
  EXPECT_TRUE(S.valueOf(B));
}

TEST(SatSolver, TrivialUnsat) {
  SatSolver S;
  int A = S.newVar();
  S.addUnit(A);
  S.addUnit(-A);
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  SatSolver S;
  (void)S.newVar();
  S.addClause({});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolver, NoClausesIsSat) {
  SatSolver S;
  (void)S.newVar();
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatSolver, TautologyIsDropped) {
  SatSolver S;
  int A = S.newVar();
  S.addBinary(A, -A);
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatSolver, ExactlyOne) {
  SatSolver S;
  std::vector<Lit> Vars;
  for (int I = 0; I != 5; ++I)
    Vars.push_back(S.newVar());
  S.addExactlyOne(Vars);
  ASSERT_EQ(S.solve(), SatResult::Sat);
  int Count = 0;
  for (Lit V : Vars)
    Count += S.valueOf(V);
  EXPECT_EQ(Count, 1);
}

TEST(SatSolver, XorChainUnsat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, ..., x1 xor xN = 1 with odd cycle length
  // is UNSAT.
  SatSolver S;
  const int N = 9;
  std::vector<int> X;
  for (int I = 0; I != N; ++I)
    X.push_back(S.newVar());
  auto AddXorTrue = [&](int A, int B) {
    S.addBinary(A, B);
    S.addBinary(-A, -B);
  };
  for (int I = 0; I != N; ++I)
    AddXorTrue(X[I], X[(I + 1) % N]);
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolver, PigeonholePrinciple) {
  // PHP(n+1, n): n+1 pigeons in n holes is UNSAT; classic CDCL stressor.
  const int Holes = 6, Pigeons = 7;
  SatSolver S;
  std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
  for (int P = 0; P != Pigeons; ++P)
    for (int H = 0; H != Holes; ++H)
      Var[P][H] = S.newVar();
  for (int P = 0; P != Pigeons; ++P) {
    std::vector<Lit> AtLeastOne(Var[P].begin(), Var[P].end());
    S.addClause(AtLeastOne);
  }
  for (int H = 0; H != Holes; ++H)
    for (int P1 = 0; P1 != Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 != Pigeons; ++P2)
        S.addBinary(-Var[P1][H], -Var[P2][H]);
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_GT(S.numConflicts(), 0u);
}

TEST(SatSolver, PigeonholeExactFitIsSat) {
  const int Holes = 6, Pigeons = 6;
  SatSolver S;
  std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
  for (int P = 0; P != Pigeons; ++P)
    for (int H = 0; H != Holes; ++H)
      Var[P][H] = S.newVar();
  for (int P = 0; P != Pigeons; ++P)
    S.addClause(std::vector<Lit>(Var[P].begin(), Var[P].end()));
  for (int H = 0; H != Holes; ++H)
    for (int P1 = 0; P1 != Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 != Pigeons; ++P2)
        S.addBinary(-Var[P1][H], -Var[P2][H]);
  ASSERT_EQ(S.solve(), SatResult::Sat);
  // Model check: every pigeon sits somewhere, no hole is shared.
  for (int H = 0; H != Holes; ++H) {
    int Count = 0;
    for (int P = 0; P != Pigeons; ++P)
      Count += S.valueOf(Var[P][H]);
    EXPECT_LE(Count, 1);
  }
}

/// Generates random 3-SAT near the phase transition and cross-checks
/// SAT answers with a model check (and brute force for small n).
TEST(SatSolver, RandomThreeSatAgainstBruteForce) {
  Rng R(2024);
  for (int Round = 0; Round != 40; ++Round) {
    const int NumVars = 12;
    const int NumClauses = 50;
    std::vector<std::vector<Lit>> Formula;
    for (int C = 0; C != NumClauses; ++C) {
      std::vector<Lit> Clause;
      for (int K = 0; K != 3; ++K) {
        int Var = 1 + static_cast<int>(R.below(NumVars));
        Clause.push_back(R.below(2) ? Var : -Var);
      }
      Formula.push_back(Clause);
    }
    // Brute force.
    bool BruteSat = false;
    for (uint32_t Model = 0; Model != (1u << NumVars) && !BruteSat; ++Model) {
      bool AllSatisfied = true;
      for (const auto &Clause : Formula) {
        bool Satisfied = false;
        for (Lit L : Clause) {
          bool Val = (Model >> (std::abs(L) - 1)) & 1;
          Satisfied |= (L > 0) == Val;
        }
        if (!Satisfied) {
          AllSatisfied = false;
          break;
        }
      }
      BruteSat = AllSatisfied;
    }
    // CDCL.
    SatSolver S;
    for (int V = 0; V != NumVars; ++V)
      (void)S.newVar();
    for (const auto &Clause : Formula)
      S.addClause(Clause);
    SatResult Result = S.solve();
    ASSERT_EQ(Result, BruteSat ? SatResult::Sat : SatResult::Unsat)
        << "round " << Round;
    if (Result == SatResult::Sat) {
      for (const auto &Clause : Formula) {
        bool Satisfied = false;
        for (Lit L : Clause)
          Satisfied |= (L > 0) == S.valueOf(std::abs(L));
        EXPECT_TRUE(Satisfied) << "model violates a clause";
      }
    }
  }
}

TEST(SatSolver, TimeoutReturnsUnknown) {
  // A hard pigeonhole instance with a microscopic budget.
  const int Holes = 10, Pigeons = 11;
  SatSolver S;
  std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
  for (int P = 0; P != Pigeons; ++P)
    for (int H = 0; H != Holes; ++H)
      Var[P][H] = S.newVar();
  for (int P = 0; P != Pigeons; ++P)
    S.addClause(std::vector<Lit>(Var[P].begin(), Var[P].end()));
  for (int H = 0; H != Holes; ++H)
    for (int P1 = 0; P1 != Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 != Pigeons; ++P2)
        S.addBinary(-Var[P1][H], -Var[P2][H]);
  EXPECT_EQ(S.solve(1e-4), SatResult::Unknown);
}

} // namespace
