//===- tests/AnalysisTest.cpp - Analysis + t-SNE tests -----------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "tsne/Tsne.h"

#include "kernels/ReferenceKernels.h"
#include "search/Search.h"
#include "support/Rng.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(Analysis, NetworkScoreMatchesPaperMinimum) {
  // Section 5.3: the n=4 score classes are {55, 58, 61, 64, 67, 70}; the
  // 5-CAS network (5 mov, 5 cmp, 10 cmov) scores the minimum 55.
  EXPECT_EQ(kernelScore(sortingNetworkCmov(4)), 55u);
  // n=3 network: 3 mov, 3 cmp, 6 cmov = 3 + 6 + 24 = 33.
  EXPECT_EQ(kernelScore(sortingNetworkCmov(3)), 33u);
  // The paper's synthesized n=3 kernel trades one mov: 2 + 6 + 24 = 32.
  EXPECT_EQ(kernelScore(paperSynthCmov3()), 32u);
}

TEST(Analysis, CriticalPathDetectsSerialChains) {
  // A fully serial chain: each mov depends on the previous.
  Program Serial = {Instr{Opcode::Mov, 1, 0}, Instr{Opcode::Mov, 2, 1},
                    Instr{Opcode::Mov, 3, 2}};
  EXPECT_EQ(criticalPathLength(Serial), 3u);
  // Independent moves execute in parallel.
  Program Parallel = {Instr{Opcode::Mov, 1, 0}, Instr{Opcode::Mov, 3, 2}};
  EXPECT_EQ(criticalPathLength(Parallel), 1u);
}

TEST(Analysis, CriticalPathSynthBeatsNetworkN3) {
  // The paper's uiCA analysis: the synthesized kernel has a better
  // dependence structure than the sorting network.
  EXPECT_LE(criticalPathLength(paperSynthCmov3()),
            criticalPathLength(sortingNetworkCmov(3)));
  EXPECT_LE(criticalPathLength(paperSynthMinMax3()),
            criticalPathLength(sortingNetworkMinMax(3)));
  // The synthesized kernels are also shorter, so at equal chain length
  // they still retire in fewer cycles.
  EXPECT_LT(paperSynthMinMax3().size(), sortingNetworkMinMax(3).size());
}

TEST(Analysis, CommandCombinationIsTheOpcodeMultiset) {
  Program A = {Instr{Opcode::Mov, 1, 0}, Instr{Opcode::Cmp, 0, 1}};
  Program B = {Instr{Opcode::Cmp, 0, 1}, Instr{Opcode::Mov, 1, 0}};
  Program C = {Instr{Opcode::Cmp, 0, 2}, Instr{Opcode::Mov, 1, 0}};
  Program D = {Instr{Opcode::CMovL, 1, 0}, Instr{Opcode::Cmp, 0, 1}};
  // Order-insensitive and operand-insensitive (the paper's notion under
  // which n=3 has exactly 23 combinations)...
  EXPECT_EQ(commandCombination(A), commandCombination(B));
  EXPECT_EQ(commandCombination(A), commandCombination(C));
  EXPECT_NE(commandCombination(A), commandCombination(D));
  EXPECT_EQ(countDistinctCombinations({A, B, C, D}), 2u);
  // ... while the finer key distinguishes operands but not order.
  EXPECT_EQ(instructionMultiset(A), instructionMultiset(B));
  EXPECT_NE(instructionMultiset(A), instructionMultiset(C));
}

TEST(Analysis, CommandCombinationCountMatchesPaperN3) {
  // The headline structure observation: among all 5602 optimal n=3
  // kernels there are exactly 23 distinct command combinations.
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.MaxLength = 11;
  Opts.MaxSolutionsKept = 1 << 20;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  ASSERT_EQ(R.Solutions.size(), 5602u);
  EXPECT_EQ(countDistinctCombinations(R.Solutions), 23u);
}

TEST(Analysis, SampleByScoreTakesLowestClasses) {
  Program Cheap = {Instr{Opcode::Mov, 1, 0}};                    // Score 1.
  Program Mid = {Instr{Opcode::Cmp, 0, 1}};                      // Score 2.
  Program Dear = {Instr{Opcode::CMovL, 1, 0}};                   // Score 4.
  std::vector<Program> All = {Dear, Mid, Cheap, Cheap};
  std::vector<Program> Picked = sampleByScore(All, 2, 1);
  ASSERT_EQ(Picked.size(), 2u);
  EXPECT_EQ(kernelScore(Picked[0]), 1u);
  EXPECT_EQ(kernelScore(Picked[1]), 2u);
}

TEST(Tsne, SeparatesTwoClusters) {
  // Two noisy clusters far apart must embed far apart. (A perfectly
  // symmetric distance matrix is a degenerate fixed point for t-SNE, so
  // the clusters get a little jitter, as real data always has.)
  const size_t N = 40;
  Rng R(11);
  std::vector<float> D2(N * N, 0.f);
  auto Cluster = [](size_t I) { return I < 20 ? 0 : 1; };
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      float Noise = static_cast<float>(R.uniform());
      float Base = Cluster(I) == Cluster(J) ? 1.0f : 400.0f;
      D2[I * N + J] = D2[J * N + I] = Base + Noise;
    }
  TsneOptions Opts;
  Opts.Perplexity = 8;
  Opts.Iterations = 400;
  Opts.LearningRate = 50;
  std::vector<double> Y = tsneEmbed(D2, N, Opts);
  ASSERT_EQ(Y.size(), 2 * N);
  // Average intra- vs inter-cluster embedded distance.
  double Intra = 0, Inter = 0;
  size_t IntraCount = 0, InterCount = 0;
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      double DX = Y[2 * I] - Y[2 * J], DY = Y[2 * I + 1] - Y[2 * J + 1];
      double Distance = std::sqrt(DX * DX + DY * DY);
      if (Cluster(I) == Cluster(J)) {
        Intra += Distance;
        ++IntraCount;
      } else {
        Inter += Distance;
        ++InterCount;
      }
    }
  EXPECT_LT(Intra / IntraCount, Inter / InterCount);
}

TEST(Tsne, HandlesDegenerateInputs) {
  EXPECT_TRUE(tsneEmbed({}, 0, TsneOptions()).empty());
  EXPECT_EQ(tsneEmbed({0.f}, 1, TsneOptions()).size(), 2u);
  // All-identical points: must not produce NaNs.
  const size_t N = 5;
  std::vector<float> D2(N * N, 0.f);
  std::vector<double> Y = tsneEmbed(D2, N, TsneOptions());
  for (double Coord : Y)
    EXPECT_TRUE(std::isfinite(Coord));
}

TEST(Tsne, ProgramDistanceMatrixIsHammingBased) {
  std::vector<std::vector<uint16_t>> Encoded = {
      {1, 2, 3}, {1, 2, 4}, {9, 9, 9}};
  std::vector<float> D2 = programDistanceMatrix(Encoded);
  EXPECT_FLOAT_EQ(D2[0 * 3 + 1], 2.0f);  // One differing slot.
  EXPECT_FLOAT_EQ(D2[0 * 3 + 2], 6.0f);  // Three differing slots.
  EXPECT_FLOAT_EQ(D2[1 * 3 + 0], 2.0f);  // Symmetry.
  EXPECT_FLOAT_EQ(D2[0], 0.0f);
}

} // namespace
