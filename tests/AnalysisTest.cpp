//===- tests/AnalysisTest.cpp - Analysis + t-SNE tests -----------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AbstractInterp.h"
#include "analysis/Analysis.h"
#include "analysis/OrderDomain.h"
#include "tsne/Tsne.h"

#include "kernels/ReferenceKernels.h"
#include "search/Search.h"
#include "support/Rng.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <random>

using namespace sks;

namespace {

TEST(Analysis, NetworkScoreMatchesPaperMinimum) {
  // Section 5.3: the n=4 score classes are {55, 58, 61, 64, 67, 70}; the
  // 5-CAS network (5 mov, 5 cmp, 10 cmov) scores the minimum 55.
  EXPECT_EQ(kernelScore(sortingNetworkCmov(4)), 55u);
  // n=3 network: 3 mov, 3 cmp, 6 cmov = 3 + 6 + 24 = 33.
  EXPECT_EQ(kernelScore(sortingNetworkCmov(3)), 33u);
  // The paper's synthesized n=3 kernel trades one mov: 2 + 6 + 24 = 32.
  EXPECT_EQ(kernelScore(paperSynthCmov3()), 32u);
}

TEST(Analysis, CriticalPathDetectsSerialChains) {
  // A fully serial chain: each mov depends on the previous.
  Program Serial = {Instr{Opcode::Mov, 1, 0}, Instr{Opcode::Mov, 2, 1},
                    Instr{Opcode::Mov, 3, 2}};
  EXPECT_EQ(criticalPathLength(Serial), 3u);
  // Independent moves execute in parallel.
  Program Parallel = {Instr{Opcode::Mov, 1, 0}, Instr{Opcode::Mov, 3, 2}};
  EXPECT_EQ(criticalPathLength(Parallel), 1u);
}

TEST(Analysis, CriticalPathSynthBeatsNetworkN3) {
  // The paper's uiCA analysis: the synthesized kernel has a better
  // dependence structure than the sorting network.
  EXPECT_LE(criticalPathLength(paperSynthCmov3()),
            criticalPathLength(sortingNetworkCmov(3)));
  EXPECT_LE(criticalPathLength(paperSynthMinMax3()),
            criticalPathLength(sortingNetworkMinMax(3)));
  // The synthesized kernels are also shorter, so at equal chain length
  // they still retire in fewer cycles.
  EXPECT_LT(paperSynthMinMax3().size(), sortingNetworkMinMax(3).size());
}

TEST(Analysis, CommandCombinationIsTheOpcodeMultiset) {
  Program A = {Instr{Opcode::Mov, 1, 0}, Instr{Opcode::Cmp, 0, 1}};
  Program B = {Instr{Opcode::Cmp, 0, 1}, Instr{Opcode::Mov, 1, 0}};
  Program C = {Instr{Opcode::Cmp, 0, 2}, Instr{Opcode::Mov, 1, 0}};
  Program D = {Instr{Opcode::CMovL, 1, 0}, Instr{Opcode::Cmp, 0, 1}};
  // Order-insensitive and operand-insensitive (the paper's notion under
  // which n=3 has exactly 23 combinations)...
  EXPECT_EQ(commandCombination(A), commandCombination(B));
  EXPECT_EQ(commandCombination(A), commandCombination(C));
  EXPECT_NE(commandCombination(A), commandCombination(D));
  EXPECT_EQ(countDistinctCombinations({A, B, C, D}), 2u);
  // ... while the finer key distinguishes operands but not order.
  EXPECT_EQ(instructionMultiset(A), instructionMultiset(B));
  EXPECT_NE(instructionMultiset(A), instructionMultiset(C));
}

TEST(Analysis, CommandCombinationCountMatchesPaperN3) {
  // The headline structure observation: among all 5602 optimal n=3
  // kernels there are exactly 23 distinct command combinations.
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.MaxLength = 11;
  Opts.MaxSolutionsKept = 1 << 20;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  ASSERT_EQ(R.Solutions.size(), 5602u);
  EXPECT_EQ(countDistinctCombinations(R.Solutions), 23u);
}

TEST(Analysis, SampleByScoreTakesLowestClasses) {
  Program Cheap = {Instr{Opcode::Mov, 1, 0}};                    // Score 1.
  Program Mid = {Instr{Opcode::Cmp, 0, 1}};                      // Score 2.
  Program Dear = {Instr{Opcode::CMovL, 1, 0}};                   // Score 4.
  std::vector<Program> All = {Dear, Mid, Cheap, Cheap};
  std::vector<Program> Picked = sampleByScore(All, 2, 1);
  ASSERT_EQ(Picked.size(), 2u);
  EXPECT_EQ(kernelScore(Picked[0]), 1u);
  EXPECT_EQ(kernelScore(Picked[1]), 2u);
}

TEST(Tsne, SeparatesTwoClusters) {
  // Two noisy clusters far apart must embed far apart. (A perfectly
  // symmetric distance matrix is a degenerate fixed point for t-SNE, so
  // the clusters get a little jitter, as real data always has.)
  const size_t N = 40;
  Rng R(11);
  std::vector<float> D2(N * N, 0.f);
  auto Cluster = [](size_t I) { return I < 20 ? 0 : 1; };
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      float Noise = static_cast<float>(R.uniform());
      float Base = Cluster(I) == Cluster(J) ? 1.0f : 400.0f;
      D2[I * N + J] = D2[J * N + I] = Base + Noise;
    }
  TsneOptions Opts;
  Opts.Perplexity = 8;
  Opts.Iterations = 400;
  Opts.LearningRate = 50;
  std::vector<double> Y = tsneEmbed(D2, N, Opts);
  ASSERT_EQ(Y.size(), 2 * N);
  // Average intra- vs inter-cluster embedded distance.
  double Intra = 0, Inter = 0;
  size_t IntraCount = 0, InterCount = 0;
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      double DX = Y[2 * I] - Y[2 * J], DY = Y[2 * I + 1] - Y[2 * J + 1];
      double Distance = std::sqrt(DX * DX + DY * DY);
      if (Cluster(I) == Cluster(J)) {
        Intra += Distance;
        ++IntraCount;
      } else {
        Inter += Distance;
        ++InterCount;
      }
    }
  EXPECT_LT(Intra / IntraCount, Inter / InterCount);
}

TEST(Tsne, HandlesDegenerateInputs) {
  EXPECT_TRUE(tsneEmbed({}, 0, TsneOptions()).empty());
  EXPECT_EQ(tsneEmbed({0.f}, 1, TsneOptions()).size(), 2u);
  // All-identical points: must not produce NaNs.
  const size_t N = 5;
  std::vector<float> D2(N * N, 0.f);
  std::vector<double> Y = tsneEmbed(D2, N, TsneOptions());
  for (double Coord : Y)
    EXPECT_TRUE(std::isfinite(Coord));
}

TEST(Tsne, ProgramDistanceMatrixIsHammingBased) {
  std::vector<std::vector<uint16_t>> Encoded = {
      {1, 2, 3}, {1, 2, 4}, {9, 9, 9}};
  std::vector<float> D2 = programDistanceMatrix(Encoded);
  EXPECT_FLOAT_EQ(D2[0 * 3 + 1], 2.0f);  // One differing slot.
  EXPECT_FLOAT_EQ(D2[0 * 3 + 2], 6.0f);  // Three differing slots.
  EXPECT_FLOAT_EQ(D2[1 * 3 + 0], 2.0f);  // Symmetry.
  EXPECT_FLOAT_EQ(D2[0], 0.0f);
}

//===----------------------------------------------------------------------===//
// Order-domain abstract interpreter (analysis/OrderDomain.h).
//===----------------------------------------------------------------------===//

constexpr unsigned kSym = OrderState::kSymBase;

TEST(OrderDomain, EntryStateKnowsInitialBindings) {
  OrderState S = OrderState::entry(3);
  // Data register i holds exactly x_i+1; scratch holds exactly Z.
  EXPECT_TRUE(S.provablyEqual(0, kSym + 1));
  EXPECT_TRUE(S.provablyEqual(1, kSym + 2));
  EXPECT_TRUE(S.provablyEqual(2, kSym + 3));
  EXPECT_TRUE(S.provablyEqual(3, kSym + 0));
  EXPECT_EQ(S.valueSet(0), 1u << 1);
  EXPECT_EQ(S.valueSet(3), 1u << 0);
  // Z <= every input, inputs mutually unordered.
  EXPECT_TRUE(S.leq(kSym + 0, kSym + 2));
  EXPECT_FALSE(S.leq(0, 1));
  EXPECT_FALSE(S.leq(1, 0));
  // Flags are clear at entry: only the EQ outcome, so cmovs are dead.
  EXPECT_EQ(S.flagOutcomes(), OrderState::kEq);
  EXPECT_TRUE(S.provablyRedundant(Instr{Opcode::CMovL, 0, 1}));
  EXPECT_TRUE(S.provablyRedundant(Instr{Opcode::CMovG, 0, 1}));
}

TEST(OrderDomain, DataVersusScratchCmpIsDetermined) {
  // cmp r1 s1 at entry compares x_1 against Z: x_1 >= 1 > 0, the may-sets
  // are disjoint, so GT is the only possible outcome.
  OrderState S = OrderState::entry(3);
  EXPECT_EQ(S.cmpOutcomes(0, 3), OrderState::kGt);
  EXPECT_TRUE(S.provablyRedundant(Instr{Opcode::Cmp, 0, 3}));
  // A data-data cmp is informative: LT or GT (EQ impossible — the inputs
  // are a permutation, so distinct symbols hold distinct values).
  EXPECT_EQ(S.cmpOutcomes(0, 1), OrderState::kLt | OrderState::kGt);
  EXPECT_FALSE(S.provablyRedundant(Instr{Opcode::Cmp, 0, 1}));
}

TEST(OrderDomain, MinIdiomEstablishesOrderThroughCmovJoin) {
  // The classic min: mov s1 r1; cmp r1 r2; cmovg r1 r2. Taken branch
  // (r1 > r2) assigns r1 := r2; untaken branch proves r1 <= r2; the join
  // leaves r1 <= r2 — the order fact survives the conditional move.
  OrderState S = OrderState::entry(3);
  S = S.extended(Instr{Opcode::Mov, 3, 0});
  EXPECT_TRUE(S.provablyEqual(3, kSym + 1)); // s1 saved x_1.
  S = S.extended(Instr{Opcode::Cmp, 0, 1});
  EXPECT_EQ(S.flagOutcomes(), OrderState::kLt | OrderState::kGt);
  S = S.extended(Instr{Opcode::CMovG, 0, 1});
  EXPECT_TRUE(S.leq(0, 1));
  EXPECT_FALSE(S.leq(1, 0));
  // r1 now holds min(x_1, x_2): either symbol is possible.
  EXPECT_EQ(S.valueSet(0), (1u << 1) | (1u << 2));
  // A pmin-style "min already in place" claim on the cmov machine's
  // state: a second cmovg on the same (now stale) pair cannot be proven
  // redundant — the flags pair was invalidated by the write to r1.
  EXPECT_FALSE(S.provablyRedundant(Instr{Opcode::CMovG, 1, 0}));
}

TEST(OrderDomain, MinMaxFoldsEstablishOrder) {
  OrderState S = OrderState::entry(3);
  S = S.extended(Instr{Opcode::Min, 0, 1});
  EXPECT_TRUE(S.leq(0, 1)); // min(d, s) <= old s, which r2 still holds.
  // Repeating the fold is a provable no-op; the mirror max is not (it
  // writes r2's value over the min).
  EXPECT_TRUE(S.provablyRedundant(Instr{Opcode::Min, 0, 1}));
  EXPECT_FALSE(S.provablyRedundant(Instr{Opcode::Min, 1, 0}));
  S = S.extended(Instr{Opcode::Max, 1, 0});
  EXPECT_TRUE(S.leq(0, 1));
  EXPECT_TRUE(S.provablyRedundant(Instr{Opcode::Max, 1, 0}));
}

TEST(OrderDomain, InterpretProgramReturnsPerInstructionStates) {
  Program P = {Instr{Opcode::Mov, 3, 0}, Instr{Opcode::Cmp, 0, 1},
               Instr{Opcode::CMovG, 0, 1}};
  std::vector<OrderState> States = interpretProgram(P, 3);
  ASSERT_EQ(States.size(), P.size() + 1);
  EXPECT_EQ(States[0].flagOutcomes(), OrderState::kEq);
  EXPECT_EQ(States[2].flagOutcomes(), OrderState::kLt | OrderState::kGt);
  EXPECT_TRUE(States[3].leq(0, 1));
}

// Every abstract fact must hold on the concrete rows: random prefixes,
// executed on all n! permutations in parallel with the abstract transfer.
TEST(OrderDomain, RandomPrefixFactsHoldConcretely) {
  struct Config {
    MachineKind Kind;
    unsigned N;
  };
  const Config Configs[] = {{MachineKind::Cmov, 3},
                            {MachineKind::Cmov, 4},
                            {MachineKind::MinMax, 3},
                            {MachineKind::MinMax, 4}};
  std::mt19937 Rng(987654321);
  for (const Config &C : Configs) {
    Machine M(C.Kind, C.N);
    const std::vector<uint32_t> Init = initialState(M).Rows;
    const std::vector<Instr> &Alphabet = M.instructions();

    // Concrete value of an abstract slot in row K: registers read the
    // current row, symbol s >= 1 reads data register s-1 of the INITIAL
    // row (x_s = what that register started with), symbol 0 is Z = 0.
    std::vector<uint32_t> Rows;
    auto SlotVal = [&](unsigned Slot, size_t K) -> uint32_t {
      if (Slot < kSym)
        return getReg(Rows[K], Slot);
      return Slot == kSym ? 0u : getReg(Init[K], Slot - kSym - 1);
    };

    auto CheckState = [&](const OrderState &S) {
      const unsigned NumSlots = kSym + C.N + 1;
      for (size_t K = 0; K != Rows.size(); ++K) {
        for (unsigned A = 0; A != NumSlots; ++A) {
          if (A >= kMaxRegs && A < kSym)
            continue;
          for (unsigned B = 0; B != NumSlots; ++B) {
            if (B >= kMaxRegs && B < kSym)
              continue;
            if (S.leq(A, B))
              ASSERT_LE(SlotVal(A, K), SlotVal(B, K))
                  << "slots " << A << " <= " << B << " row " << K;
          }
        }
        // The register's symbol (unique: values in a row are distinct
        // across symbols) must be in the may-set.
        for (unsigned R = 0; R != M.numRegs(); ++R) {
          const uint32_t V = getReg(Rows[K], R);
          unsigned Sym = 0;
          for (unsigned X = 1; V != 0 && X <= C.N; ++X)
            if (getReg(Init[K], X - 1) == V)
              Sym = X;
          ASSERT_TRUE(S.valueSet(R) & (1u << Sym))
              << "reg " << R << " row " << K;
        }
        // The row's flag state must be a possible outcome.
        const uint8_t Flag = (Rows[K] & FlagLT)   ? OrderState::kLt
                             : (Rows[K] & FlagGT) ? OrderState::kGt
                                                  : OrderState::kEq;
        ASSERT_TRUE(S.flagOutcomes() & Flag) << "row " << K;
      }
    };

    auto CheckClaims = [&](const OrderState &S) {
      for (const Instr &I : Alphabet) {
        if (!S.provablyRedundant(I))
          continue;
        if (I.Op == Opcode::Cmp) {
          // Determined cmp: one outcome across ALL rows, the one claimed.
          const uint8_t Claimed = S.cmpOutcomes(I.Dst, I.Src);
          for (size_t K = 0; K != Rows.size(); ++K) {
            const uint32_t After = M.apply(Rows[K], I);
            const uint8_t Got = (After & FlagLT)   ? OrderState::kLt
                                : (After & FlagGT) ? OrderState::kGt
                                                   : OrderState::kEq;
            ASSERT_EQ(Got, Claimed) << toString(I, C.N) << " row " << K;
          }
        } else {
          // Claimed no-op: every row maps to itself.
          for (size_t K = 0; K != Rows.size(); ++K)
            ASSERT_EQ(M.apply(Rows[K], I), Rows[K])
                << toString(I, C.N) << " row " << K;
        }
      }
    };

    for (int Trial = 0; Trial != 50; ++Trial) {
      Rows = Init;
      OrderState S = OrderState::entry(C.N);
      const unsigned Len = 1 + Rng() % 8;
      for (unsigned Step = 0; Step != Len; ++Step) {
        CheckClaims(S);
        const Instr I = Alphabet[Rng() % Alphabet.size()];
        for (uint32_t &Row : Rows)
          Row = M.apply(Row, I);
        S = S.extended(I);
        CheckState(S);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Semantic lint rules (analysis/AbstractInterp.h).
//===----------------------------------------------------------------------===//

std::vector<LintRule> rulesAt(const std::vector<Diagnostic> &Diags,
                              unsigned Index) {
  std::vector<LintRule> Rules;
  for (const Diagnostic &D : Diags)
    if (D.InstrIndex == Index)
      Rules.push_back(D.Rule);
  return Rules;
}

bool hasRule(const std::vector<LintRule> &Rules, LintRule R) {
  return std::find(Rules.begin(), Rules.end(), R) != Rules.end();
}

TEST(SemanticLint, FlagsEachSemanticRule) {
  // cmovl before any cmp: dead (noop-cmov, subsuming stale-flags);
  // cmp of data against scratch-zero: outcome determined (redundant-cmp).
  Program P = {Instr{Opcode::CMovL, 0, 1}, Instr{Opcode::Cmp, 0, 3},
               Instr{Opcode::CMovG, 0, 1}};
  std::vector<Diagnostic> Diags = lintProgramSemantic(P, 3);
  EXPECT_TRUE(hasRule(rulesAt(Diags, 0), LintRule::NoopCmov));
  EXPECT_FALSE(hasRule(rulesAt(Diags, 0), LintRule::StaleFlags));
  EXPECT_TRUE(hasRule(rulesAt(Diags, 1), LintRule::RedundantCmp));

  // pmin repeated: the second fold's result is already in place.
  Program Q = {Instr{Opcode::Min, 0, 1}, Instr{Opcode::Min, 0, 1}};
  Diags = lintProgramSemantic(Q, 3);
  EXPECT_TRUE(hasRule(rulesAt(Diags, 1), LintRule::OrderEstablished));
  EXPECT_FALSE(hasRule(rulesAt(Diags, 0), LintRule::OrderEstablished));
}

TEST(SemanticLint, SelfMoveSubsumesSemanticFindings) {
  // cmp r1 r1 is both a syntactic self-move and a semantically determined
  // cmp; the crisper self-move report wins.
  Program P = {Instr{Opcode::Cmp, 0, 0}};
  std::vector<Diagnostic> Diags = lintProgramSemantic(P, 3);
  EXPECT_TRUE(hasRule(rulesAt(Diags, 0), LintRule::SelfMove));
  EXPECT_FALSE(hasRule(rulesAt(Diags, 0), LintRule::RedundantCmp));
}

TEST(SemanticLint, CleanKernelsStayClean) {
  for (const Program &P : {paperSynthCmov3(), sortingNetworkCmov(3)})
    for (const Diagnostic &D : lintProgramSemantic(P, 3))
      EXPECT_LT(D.Severity, LintSeverity::Warning)
        << toString(D, P, 3);
  for (const Diagnostic &D : lintProgramSemantic(paperSynthMinMax3(), 3))
    EXPECT_LT(D.Severity, LintSeverity::Warning);
}

} // namespace
