//===- tests/SymmetryTest.cpp - Register-renaming symmetry analysis --------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit and randomized property tests for analysis/Symmetry.h:
//
//  - group structure: orders for each machine kind, identity at element 0,
//    inverse/composition/parity-override table identities;
//  - the action: transformRow is a group action (homomorphism against
//    compose), and renameInstr commutes with concrete execution — the
//    semantic soundness fact the whole quotient rests on;
//  - canonicalize: orbit invariance (every member of an orbit maps to the
//    same canonical buffer) and witness correctness, on random instruction
//    walks from the real initial state;
//  - canonicalProgram: the program-level restriction behind the sks-lint
//    rule non-canonical-registers, including cmp re-normalization and the
//    forced cmov direction flips, on verified sort kernels.
//
//===----------------------------------------------------------------------===//

#include "analysis/Symmetry.h"
#include "state/Canonicalize.h"
#include "state/SearchState.h"
#include "support/Rng.h"
#include "verify/Verify.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sks;

namespace {

/// A random packed row of \p M: register fields uniform in [0, n], flags
/// one of clear / lt / gt (cmp never sets both).
uint32_t randomRow(const Machine &M, Rng &R) {
  uint32_t Row = 0;
  for (unsigned Reg = 0; Reg != M.numRegs(); ++Reg)
    Row = setReg(Row, Reg, static_cast<uint32_t>(R.below(M.numValues())));
  switch (R.below(3)) {
  case 1:
    return Row | FlagLT;
  case 2:
    return Row | FlagGT;
  default:
    return Row;
  }
}

TEST(Symmetry, GroupOrders) {
  // Cmov m=1: no scratch pair to permute, but the flag involution remains.
  SymmetryTable Cmov1(Machine(MachineKind::Cmov, 3));
  EXPECT_EQ(Cmov1.size(), 2u);
  EXPECT_FALSE(Cmov1.trivial());

  // Min/max m=1: no flags either — the quotient collapses to the identity.
  SymmetryTable MinMax1(Machine(MachineKind::MinMax, 3));
  EXPECT_EQ(MinMax1.size(), 1u);
  EXPECT_TRUE(MinMax1.trivial());

  // Cmov m=2: 2! scratch permutations x flag involution.
  SymmetryTable Cmov2(Machine(MachineKind::Cmov, 3, 2));
  EXPECT_EQ(Cmov2.size(), 4u);

  // Hybrid n=3: one GP scratch (1!) x the whole goal-free vector file
  // (4 registers, 4!) x flag involution = 48.
  SymmetryTable Hyb(Machine(MachineKind::Hybrid, 3));
  EXPECT_EQ(Hyb.size(), 48u);
}

TEST(Symmetry, ElementZeroIsTheIdentity) {
  for (MachineKind Kind :
       {MachineKind::Cmov, MachineKind::MinMax, MachineKind::Hybrid}) {
    Machine M(Kind, 3, Kind == MachineKind::Cmov ? 2u : 1u);
    SymmetryTable Sym(M);
    const SymmetryElem &Id = Sym.elem(0);
    EXPECT_TRUE(Id.PermIsIdentity);
    EXPECT_FALSE(Id.FlagSwap);
    Rng R(11);
    for (int Round = 0; Round != 50; ++Round) {
      uint32_t Row = randomRow(M, R);
      EXPECT_EQ(Sym.transformRow(Row, 0), Row);
    }
  }
}

TEST(Symmetry, InverseComposeAndParityTables) {
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::Hybrid}) {
    Machine M(Kind, 3, Kind == MachineKind::Cmov ? 2u : 1u);
    SymmetryTable Sym(M);
    for (unsigned E = 0; E != Sym.size(); ++E) {
      EXPECT_EQ(Sym.compose(E, Sym.inverse(E)), 0u);
      EXPECT_EQ(Sym.compose(Sym.inverse(E), E), 0u);
      EXPECT_EQ(Sym.compose(0, E), E);
      EXPECT_EQ(Sym.compose(E, 0), E);
      // The inverse keeps the parity (the involution is self-inverse and
      // central); the parity override changes only the flag component.
      EXPECT_EQ(Sym.flagSwap(Sym.inverse(E)), Sym.flagSwap(E));
      for (bool Phi : {false, true}) {
        unsigned P = Sym.withFlagSwap(E, Phi);
        EXPECT_EQ(Sym.flagSwap(P), Phi);
        EXPECT_EQ(Sym.elem(P).Perm, Sym.elem(E).Perm);
      }
    }
  }
}

TEST(Symmetry, TransformRowIsAGroupAction) {
  // transformRow(., compose(E1, E2)) == transformRow(transformRow(., E1),
  // E2): compose(First, Then) applies First, then Then.
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::Hybrid}) {
    Machine M(Kind, 3, Kind == MachineKind::Cmov ? 2u : 1u);
    SymmetryTable Sym(M);
    Rng R(42 + static_cast<uint64_t>(Kind));
    for (int Round = 0; Round != 40; ++Round) {
      uint32_t Row = randomRow(M, R);
      for (unsigned E1 = 0; E1 != Sym.size(); ++E1)
        for (unsigned E2 = 0; E2 != Sym.size(); ++E2)
          ASSERT_EQ(Sym.transformRow(Sym.transformRow(Row, E1), E2),
                    Sym.transformRow(Row, Sym.compose(E1, E2)))
              << "E1=" << E1 << " E2=" << E2;
      for (unsigned E = 0; E != Sym.size(); ++E)
        ASSERT_EQ(Sym.transformRow(Sym.transformRow(Row, E), Sym.inverse(E)),
                  Row)
            << "E=" << E;
    }
  }
}

TEST(Symmetry, RenameInstrCommutesWithExecution) {
  // The soundness core: renaming a state and executing the renamed
  // instruction lands on the renamed result — with the flag component of
  // the correspondence rebuilt from renameInstr's parity (a cmp overwrites
  // the flags, so its normalization parity replaces the old one; every
  // other opcode passes the element's own parity through):
  //
  //   apply(T_E(Row), rename_E(I)) == T_{withFlagSwap(E, Phi)}(apply(Row, I))
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::Hybrid}) {
    Machine M(Kind, 3, Kind == MachineKind::Cmov ? 2u : 1u);
    SymmetryTable Sym(M);
    Rng R(77 + static_cast<uint64_t>(Kind));
    for (int Round = 0; Round != 60; ++Round) {
      uint32_t Row = randomRow(M, R);
      for (const Instr &I : M.instructions()) {
        for (unsigned E = 0; E != Sym.size(); ++E) {
          bool Phi;
          Instr Renamed = Sym.renameInstr(I, E, Phi);
          ASSERT_EQ(M.apply(Sym.transformRow(Row, E), Renamed),
                    Sym.transformRow(M.apply(Row, I),
                                     Sym.withFlagSwap(E, Phi)))
              << toString(I, M.numData()) << " E=" << E;
        }
      }
    }
  }
}

TEST(Symmetry, RenamedInstructionsStayInTheAlphabet) {
  // The quotient only works if every renamed edge is itself a legal
  // instruction (cmp operands ascending, no self-moves).
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::Hybrid}) {
    Machine M(Kind, 3, Kind == MachineKind::Cmov ? 2u : 1u);
    SymmetryTable Sym(M);
    const std::vector<Instr> &Alphabet = M.instructions();
    for (const Instr &I : Alphabet)
      for (unsigned E = 0; E != Sym.size(); ++E) {
        bool Phi;
        Instr Renamed = Sym.renameInstr(I, E, Phi);
        EXPECT_NE(std::find(Alphabet.begin(), Alphabet.end(), Renamed),
                  Alphabet.end())
            << toString(I, M.numData()) << " renamed by " << E << " to "
            << toString(Renamed, M.numData());
      }
  }
}

/// Sorts + dedups a copy of \p Rows — the canonical-form precondition of
/// SymmetryTable::canonicalize.
std::vector<uint32_t> sortedUnique(std::vector<uint32_t> Rows) {
  std::sort(Rows.begin(), Rows.end());
  Rows.erase(std::unique(Rows.begin(), Rows.end()), Rows.end());
  return Rows;
}

TEST(Symmetry, CanonicalizeIsOrbitInvariantOnRandomWalks) {
  // Random instruction walks from the real initial state; at every step,
  // every member of the state's orbit must canonicalize to the same buffer,
  // and the returned witness must actually map the input onto it.
  for (MachineKind Kind : {MachineKind::Cmov, MachineKind::Hybrid}) {
    Machine M(Kind, 3, Kind == MachineKind::Cmov ? 2u : 1u);
    SymmetryTable Sym(M);
    const std::vector<Instr> &Instrs = M.instructions();
    Rng R(9001 + static_cast<uint64_t>(Kind));
    std::vector<uint32_t> Scratch;

    std::vector<uint32_t> Rows = initialState(M).Rows;
    for (int Step = 0; Step != 120; ++Step) {
      Instr Via = Instrs[R.below(Instrs.size())];
      for (uint32_t &Row : Rows)
        Row = M.apply(Row, Via);
      Rows = sortedUnique(Rows);

      std::vector<uint32_t> Canon = Rows;
      uint8_t W = Sym.canonicalize(Canon.data(),
                                   static_cast<uint32_t>(Canon.size()),
                                   Scratch);
      ASSERT_LT(W, Sym.size());
      // Witness correctness: transforming the input by W reproduces the
      // canonical buffer (W == 0 means the input already was canonical).
      std::vector<uint32_t> Mapped(Rows.size());
      for (size_t I = 0; I != Rows.size(); ++I)
        Mapped[I] = Sym.transformRow(Rows[I], W);
      std::sort(Mapped.begin(), Mapped.end());
      ASSERT_EQ(Mapped, Canon);
      if (W == 0) {
        ASSERT_EQ(Canon, Rows);
      }

      // Orbit invariance: every transform of the state canonicalizes to
      // the identical buffer, and canonicalize is idempotent.
      for (unsigned E = 0; E != Sym.size(); ++E) {
        std::vector<uint32_t> Other(Rows.size());
        for (size_t I = 0; I != Rows.size(); ++I)
          Other[I] = Sym.transformRow(Rows[I], E);
        sortRows(Other.data(), static_cast<uint32_t>(Other.size()));
        uint8_t WO = Sym.canonicalize(Other.data(),
                                      static_cast<uint32_t>(Other.size()),
                                      Scratch);
        ASSERT_EQ(Other, Canon) << "E=" << E << " step " << Step;
        if (E == 0) {
          ASSERT_EQ(WO, W);
        }
      }

      // Walk on from the canonical representative, as the engine does.
      Rows = std::move(Canon);
      if (Rows.size() <= 1) // Dead end; restart to keep states wide.
        Rows = initialState(M).Rows;
    }
  }
}

TEST(Symmetry, CanonicalProgramRenamesScratchAndFlipsCmovs) {
  // Two behaviorally identical sort-2 kernels over scratch registers
  // s1 = reg 2 and s2 = reg 3; Q is P under the s1 <-> s2 swap, with the
  // scratch-scratch cmp re-normalized into the alphabet and both
  // conditional moves flipped through the forced parity. P is the orbit
  // representative; canonicalProgram must map Q back onto it.
  const unsigned N = 2;
  const Program P = {
      {Opcode::Mov, 2, 0},   // mov s1, r1
      {Opcode::Mov, 3, 1},   // mov s2, r2
      {Opcode::Cmp, 2, 3},   // cmp s1, s2     (lt iff r1 < r2)
      {Opcode::CMovG, 0, 3}, // cmovg r1, s2   (r1 > r2: r1 = r2)
      {Opcode::CMovG, 1, 2}, // cmovg r2, s1   (r1 > r2: r2 = old r1)
  };
  const Program Q = {
      {Opcode::Mov, 3, 0},   // mov s2, r1
      {Opcode::Mov, 2, 1},   // mov s1, r2
      {Opcode::Cmp, 2, 3},   // cmp s1, s2     (lt iff r2 < r1: swapped!)
      {Opcode::CMovL, 0, 2}, // cmovl r1, s1
      {Opcode::CMovL, 1, 3}, // cmovl r2, s2
  };
  Machine M(MachineKind::Cmov, N, 2);
  ASSERT_TRUE(isCorrectKernel(M, P));
  ASSERT_TRUE(isCorrectKernel(M, Q));

  EXPECT_TRUE(isCanonicalProgram(P, N));
  EXPECT_FALSE(isCanonicalProgram(Q, N));
  EXPECT_EQ(canonicalProgram(Q, N), P);
  EXPECT_EQ(canonicalProgram(P, N), P); // Idempotent.
  // The canonical form is still a correct kernel — the rule is purely
  // informational.
  EXPECT_TRUE(isCorrectKernel(M, canonicalProgram(Q, N)));
}

TEST(Symmetry, CanonicalProgramTrivialCases) {
  // m = 1: a single scratch register permutes only trivially, so every
  // kernel is its own canonical form (the prebuilt kernels rely on this).
  const Program OneScratch = {
      {Opcode::Mov, 2, 0},
      {Opcode::Cmp, 0, 1},
      {Opcode::CMovG, 0, 1},
      {Opcode::CMovG, 1, 2},
  };
  EXPECT_TRUE(isCanonicalProgram(OneScratch, 2));

  // Mixed-file programs are skipped: the GP/vector split is not
  // recoverable from the text, so no renaming is attempted even though
  // two scratch registers appear.
  const Program Mixed = {
      {Opcode::Mov, 3, 0},
      {Opcode::Min, 2, 1},
      {Opcode::Cmp, 0, 1},
  };
  EXPECT_EQ(canonicalProgram(Mixed, 2), Mixed);
  EXPECT_TRUE(isCanonicalProgram(Mixed, 2));
}

} // namespace
