//===- tests/IntegrationTest.cpp - End-to-end pipeline tests ------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Whole-pipeline integration: synthesize -> verify -> robust-filter ->
// JIT -> embed in the divide-and-conquer sorts -> compare against
// std::sort on adversarial and random inputs. This is the path a
// downstream user of the library takes.
//
//===----------------------------------------------------------------------===//

#include "codegen/Jit.h"
#include "search/Search.h"
#include "sortlib/SortLib.h"
#include "support/Rng.h"
#include "verify/Verify.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sks;

namespace {

/// Synthesizes, robustness-checks and JITs one kernel per length 2..4.
class SynthesizedPipeline : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Kernels = new std::vector<std::unique_ptr<JitKernel>>();
    Base = new BaseCase(4);
    for (unsigned N = 2; N <= 4; ++N) {
      Machine M(MachineKind::Cmov, N);
      SearchOptions Opts;
      Opts.Heuristic = HeuristicKind::PermCount;
      Opts.UseViability = true;
      Opts.Cut = CutConfig::mult(1.0);
      Opts.MaxLength = networkUpperBound(MachineKind::Cmov, N);
      SearchResult R = synthesize(M, Opts);
      ASSERT_TRUE(R.Found);
      ASSERT_TRUE(isCorrectKernel(M, R.Solutions.front()));
      ASSERT_TRUE(isRobustKernel(M, R.Solutions.front()))
          << "best-first pick for n=" << N << " must be robust";
      if (jitSupported(MachineKind::Cmov)) {
        auto Jit =
            JitKernel::compile(MachineKind::Cmov, N, R.Solutions.front());
        ASSERT_NE(Jit, nullptr);
        Base->setKernel(N, Jit->entry());
        Kernels->push_back(std::move(Jit));
      }
    }
  }
  static void TearDownTestSuite() {
    delete Base;
    Base = nullptr;
    delete Kernels;
    Kernels = nullptr;
  }

  static std::vector<std::unique_ptr<JitKernel>> *Kernels;
  static BaseCase *Base;
};

std::vector<std::unique_ptr<JitKernel>> *SynthesizedPipeline::Kernels =
    nullptr;
BaseCase *SynthesizedPipeline::Base = nullptr;

TEST_F(SynthesizedPipeline, QuicksortMatchesStdSortOnRandomInputs) {
  Rng R(2026);
  for (int Trial = 0; Trial != 25; ++Trial) {
    std::vector<int32_t> Data(1 + R.below(30000));
    for (int32_t &V : Data)
      V = static_cast<int32_t>(R.next());
    std::vector<int32_t> Expected = Data;
    std::sort(Expected.begin(), Expected.end());
    quicksortWithKernel(Data.data(), Data.size(), *Base);
    ASSERT_EQ(Data, Expected) << "len=" << Data.size();
  }
}

TEST_F(SynthesizedPipeline, MergesortMatchesStdSortOnRandomInputs) {
  Rng R(2027);
  for (int Trial = 0; Trial != 25; ++Trial) {
    std::vector<int32_t> Data(1 + R.below(30000));
    for (int32_t &V : Data)
      V = static_cast<int32_t>(R.range(-100, 100)); // Duplicate-heavy.
    std::vector<int32_t> Expected = Data;
    std::sort(Expected.begin(), Expected.end());
    mergesortWithKernel(Data.data(), Data.size(), *Base);
    ASSERT_EQ(Data, Expected);
  }
}

TEST_F(SynthesizedPipeline, AdversarialPatterns) {
  for (size_t Len : {size_t(1), size_t(2), size_t(3), size_t(4), size_t(5),
                     size_t(4096)}) {
    // Already sorted, reverse sorted, sawtooth, constant.
    std::vector<std::vector<int32_t>> Patterns;
    std::vector<int32_t> Ascending(Len), Descending(Len), Sawtooth(Len),
        Constant(Len, 7);
    for (size_t I = 0; I != Len; ++I) {
      Ascending[I] = static_cast<int32_t>(I);
      Descending[I] = static_cast<int32_t>(Len - I);
      Sawtooth[I] = static_cast<int32_t>(I % 5);
    }
    Patterns = {Ascending, Descending, Sawtooth, Constant};
    for (std::vector<int32_t> Data : Patterns) {
      std::vector<int32_t> Expected = Data;
      std::sort(Expected.begin(), Expected.end());
      quicksortWithKernel(Data.data(), Data.size(), *Base);
      ASSERT_EQ(Data, Expected) << "len=" << Len;
    }
  }
}

TEST_F(SynthesizedPipeline, MinMaxKernelSortsThroughJit) {
  if (!jitSupported(MachineKind::MinMax))
    GTEST_SKIP() << "no SSE4.1";
  Machine M(MachineKind::MinMax, 4);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.UseViability = true;
  Opts.Cut = CutConfig::mult(1.0);
  Opts.MaxLength = networkUpperBound(MachineKind::MinMax, 4);
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.OptimalLength, 15u);
  auto Jit = JitKernel::compile(MachineKind::MinMax, 4, R.Solutions.front());
  ASSERT_NE(Jit, nullptr);
  Rng Rand(5);
  for (int Trial = 0; Trial != 500; ++Trial) {
    int32_t Data[4];
    for (int32_t &V : Data)
      V = static_cast<int32_t>(Rand.next());
    int32_t Expected[4];
    std::copy(Data, Data + 4, Expected);
    std::sort(Expected, Expected + 4);
    (*Jit)(Data);
    ASSERT_TRUE(std::equal(Data, Data + 4, Expected));
  }
}

} // namespace
