//===- tests/SortLibTest.cpp - Embedded-sort tests --------------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sortlib/SortLib.h"

#include "kernels/CxxKernels.h"
#include "support/Rng.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sks;

namespace {

void checkSorter(void (*Sorter)(int32_t *, size_t, const BaseCase &),
                 const BaseCase &Base) {
  Rng R(99);
  for (int Trial = 0; Trial != 60; ++Trial) {
    size_t Len = static_cast<size_t>(R.below(2000));
    std::vector<int32_t> Data(Len);
    for (int32_t &V : Data)
      V = static_cast<int32_t>(R.range(-10000, 10000));
    std::vector<int32_t> Expected = Data;
    std::sort(Expected.begin(), Expected.end());
    Sorter(Data.data(), Data.size(), Base);
    EXPECT_EQ(Data, Expected) << "len=" << Len;
  }
}

TEST(SortLib, QuicksortWithInsertionFallback) {
  BaseCase Base(3); // No kernels registered: insertion fallback.
  checkSorter(quicksortWithKernel, Base);
}

TEST(SortLib, MergesortWithInsertionFallback) {
  BaseCase Base(3);
  checkSorter(mergesortWithKernel, Base);
}

TEST(SortLib, QuicksortWithKernel3) {
  BaseCase Base(3);
  Base.setKernel(3, swapSort3);
  checkSorter(quicksortWithKernel, Base);
}

TEST(SortLib, MergesortWithKernel3) {
  BaseCase Base(3);
  Base.setKernel(3, swapSort3);
  checkSorter(mergesortWithKernel, Base);
}

TEST(SortLib, QuicksortWithKernels4) {
  BaseCase Base(4);
  Base.setKernel(3, swapSort3);
  Base.setKernel(4, swapSort4);
  checkSorter(quicksortWithKernel, Base);
}

TEST(SortLib, EdgeCases) {
  BaseCase Base(3);
  Base.setKernel(3, swapSort3);
  std::vector<int32_t> Empty;
  quicksortWithKernel(Empty.data(), 0, Base);
  mergesortWithKernel(Empty.data(), 0, Base);

  int32_t One[1] = {5};
  quicksortWithKernel(One, 1, Base);
  EXPECT_EQ(One[0], 5);

  int32_t Two[2] = {9, -3};
  quicksortWithKernel(Two, 2, Base);
  EXPECT_EQ(Two[0], -3);
  EXPECT_EQ(Two[1], 9);

  // All-equal input (pathological for Hoare partition).
  std::vector<int32_t> Equal(10007, 42);
  quicksortWithKernel(Equal.data(), Equal.size(), Base);
  EXPECT_TRUE(std::all_of(Equal.begin(), Equal.end(),
                          [](int32_t V) { return V == 42; }));

  // Already sorted and reverse sorted.
  std::vector<int32_t> Sorted(5000);
  for (size_t I = 0; I != Sorted.size(); ++I)
    Sorted[I] = static_cast<int32_t>(I);
  std::vector<int32_t> Reversed(Sorted.rbegin(), Sorted.rend());
  quicksortWithKernel(Reversed.data(), Reversed.size(), Base);
  EXPECT_EQ(Reversed, Sorted);
  quicksortWithKernel(Sorted.data(), Sorted.size(), Base);
  EXPECT_TRUE(std::is_sorted(Sorted.begin(), Sorted.end()));
}

TEST(SortLib, MergesortIsStableOnValues) {
  // Values only (ints), so stability just means correctness here; check a
  // duplicate-heavy input.
  BaseCase Base(4);
  Base.setKernel(3, swapSort3);
  Base.setKernel(4, swapSort4);
  Rng R(5);
  std::vector<int32_t> Data(4096);
  for (int32_t &V : Data)
    V = static_cast<int32_t>(R.below(8));
  std::vector<int32_t> Expected = Data;
  std::sort(Expected.begin(), Expected.end());
  mergesortWithKernel(Data.data(), Data.size(), Base);
  EXPECT_EQ(Data, Expected);
}

} // namespace
