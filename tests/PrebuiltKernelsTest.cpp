//===- tests/PrebuiltKernelsTest.cpp - Shipped-kernel validation --------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every kernel shipped under kernels_prebuilt/ must load, prove correct on
// the n! suite, pass the all-integer-input robustness check, and (where the
// host supports it) behave identically under the JIT.
//
//===----------------------------------------------------------------------===//

#include "analysis/Symmetry.h"
#include "codegen/Jit.h"
#include "kernels/KernelIO.h"
#include "support/Rng.h"
#include "verify/Verify.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sks;

#ifndef SKS_SOURCE_DIR
#define SKS_SOURCE_DIR "."
#endif

namespace {

class PrebuiltKernel : public ::testing::TestWithParam<const char *> {};

TEST_P(PrebuiltKernel, LoadsVerifiesAndRuns) {
  std::string Path =
      std::string(SKS_SOURCE_DIR) + "/kernels_prebuilt/" + GetParam();
  SavedKernel Kernel;
  ASSERT_TRUE(loadKernel(Path, Kernel)) << Path;
  Machine M(Kernel.Kind, Kernel.N);
  EXPECT_TRUE(isCorrectKernel(M, Kernel.P)) << Path;
  EXPECT_TRUE(isRobustKernel(M, Kernel.P)) << Path;
  // Shipped kernels are their orbit's representative (with one scratch
  // register this is trivially so; the assertion guards a future m > 1
  // kernel against tripping sks-lint's non-canonical-registers note).
  EXPECT_TRUE(isCanonicalProgram(Kernel.P, Kernel.N)) << Path;

  if (!jitSupported(Kernel.Kind))
    return;
  auto Jit = JitKernel::compile(Kernel.Kind, Kernel.N, Kernel.P);
  ASSERT_NE(Jit, nullptr);
  Rng R(2028);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::vector<int32_t> Data(Kernel.N);
    for (int32_t &V : Data)
      V = static_cast<int32_t>(R.next());
    std::vector<int32_t> Expected = Data;
    std::sort(Expected.begin(), Expected.end());
    (*Jit)(Data.data());
    ASSERT_EQ(Data, Expected) << Path;
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, PrebuiltKernel,
                         ::testing::Values("sort2_cmov.sks",
                                           "sort3_cmov.sks",
                                           "sort4_cmov.sks",
                                           "sort3_minmax.sks"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &Ch : Name)
                             if (Ch == '.')
                               Ch = '_';
                           return Name;
                         });

TEST(PrebuiltKernel, ExpectedLengths) {
  struct Expectation {
    const char *File;
    size_t Length;
  };
  const Expectation Expected[] = {{"sort2_cmov.sks", 4},
                                  {"sort3_cmov.sks", 11},
                                  {"sort4_cmov.sks", 20},
                                  {"sort3_minmax.sks", 8}};
  for (const Expectation &E : Expected) {
    SavedKernel Kernel;
    ASSERT_TRUE(loadKernel(
        std::string(SKS_SOURCE_DIR) + "/kernels_prebuilt/" + E.File, Kernel));
    EXPECT_EQ(Kernel.P.size(), E.Length) << E.File;
  }
}

} // namespace
