//===- tests/JitTest.cpp - JIT / asm emission tests -------------------------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/AsmEmitter.h"
#include "codegen/Jit.h"

#include "kernels/ReferenceKernels.h"
#include "support/Permutations.h"
#include "support/Rng.h"
#include "verify/Verify.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sks;

namespace {

/// Property test: the JIT-compiled kernel agrees with the interpreter and
/// with std::sort on random signed inputs.
void checkJitAgainstInterpreter(MachineKind Kind, unsigned N,
                                const Program &P) {
  if (!jitSupported(Kind))
    GTEST_SKIP() << "JIT unsupported on this host";
  auto Kernel = JitKernel::compile(Kind, N, P);
  ASSERT_NE(Kernel, nullptr);
  EXPECT_GT(Kernel->codeSize(), 0u);

  Rng R(7);
  for (int Trial = 0; Trial != 2000; ++Trial) {
    std::vector<int32_t> Data(N);
    for (int32_t &V : Data)
      V = static_cast<int32_t>(R.range(-100000, 100000));
    std::vector<int32_t> ViaInterp = Data;
    std::vector<int32_t> Expected = Data;
    (*Kernel)(Data.data());
    interpretKernel(Kind, N, P, ViaInterp.data());
    std::sort(Expected.begin(), Expected.end());
    EXPECT_EQ(Data, ViaInterp);
    EXPECT_EQ(Data, Expected);
  }
}

TEST(Jit, CmovNetwork3) {
  checkJitAgainstInterpreter(MachineKind::Cmov, 3, sortingNetworkCmov(3));
}
TEST(Jit, CmovNetwork4) {
  checkJitAgainstInterpreter(MachineKind::Cmov, 4, sortingNetworkCmov(4));
}
TEST(Jit, CmovNetwork5) {
  checkJitAgainstInterpreter(MachineKind::Cmov, 5, sortingNetworkCmov(5));
}
TEST(Jit, CmovPaperSynth3) {
  checkJitAgainstInterpreter(MachineKind::Cmov, 3, paperSynthCmov3());
}
TEST(Jit, MinMaxNetwork3) {
  checkJitAgainstInterpreter(MachineKind::MinMax, 3, sortingNetworkMinMax(3));
}
TEST(Jit, MinMaxNetwork4) {
  checkJitAgainstInterpreter(MachineKind::MinMax, 4, sortingNetworkMinMax(4));
}
TEST(Jit, MinMaxPaperSynth3) {
  checkJitAgainstInterpreter(MachineKind::MinMax, 3, paperSynthMinMax3());
}

TEST(Jit, MinMaxNegativeValuesUseSignedSemantics) {
  if (!jitSupported(MachineKind::MinMax))
    GTEST_SKIP();
  auto Kernel =
      JitKernel::compile(MachineKind::MinMax, 3, sortingNetworkMinMax(3));
  ASSERT_NE(Kernel, nullptr);
  int32_t Data[3] = {5, -7, 0};
  (*Kernel)(Data);
  EXPECT_EQ(Data[0], -7);
  EXPECT_EQ(Data[1], 0);
  EXPECT_EQ(Data[2], 5);
}

TEST(Jit, InterpreterMatchesModelSemantics) {
  // On the verification domain 1..n the int32 interpreter and the packed
  // 3-bit machine must agree.
  Machine M(MachineKind::Cmov, 4);
  Program P = sortingNetworkCmov(4);
  for (const std::vector<int> &Perm : allPermutations(4)) {
    std::vector<int32_t> Data(Perm.begin(), Perm.end());
    interpretKernel(MachineKind::Cmov, 4, P, Data.data());
    uint32_t Row = M.run(M.packInitial(Perm), P);
    for (unsigned I = 0; I != 4; ++I)
      EXPECT_EQ(static_cast<uint32_t>(Data[I]), getReg(Row, I));
  }
}

TEST(AsmEmitter, ListingShapesMatchKernel) {
  Program P = paperSynthCmov3();
  std::string Text = emitAsmText(MachineKind::Cmov, 3, P, true);
  // 3 loads + 11 kernel instructions + 3 stores + ret = 18 lines.
  EXPECT_EQ(std::count(Text.begin(), Text.end(), '\n'), 18);
  EXPECT_NE(Text.find("cmovl"), std::string::npos);
  EXPECT_NE(Text.find("[rdi + 8]"), std::string::npos);
  std::string Bare = emitAsmText(MachineKind::Cmov, 3, P, false);
  EXPECT_EQ(std::count(Bare.begin(), Bare.end(), '\n'), 11);
}

TEST(AsmEmitter, MinMaxListingUsesVectorRegisters) {
  std::string Text =
      emitAsmText(MachineKind::MinMax, 3, paperSynthMinMax3(), true);
  EXPECT_NE(Text.find("pminsd"), std::string::npos);
  EXPECT_NE(Text.find("xmm0"), std::string::npos);
  EXPECT_EQ(Text.find("eax"), std::string::npos);
}

TEST(AsmEmitter, MemoryMixCountsLoadsAndStores) {
  InstrMix Mix = countMixWithMemory(paperSynthCmov3(), 3);
  // The paper's table row for the n=3 enum kernel: 3 cmp, 8 mov, 6 cmov.
  EXPECT_EQ(Mix.Cmp, 3u);
  EXPECT_EQ(Mix.Mov, 8u);
  EXPECT_EQ(Mix.CMov, 6u);
}

TEST(EmitBytes, CapacityExceededIsTypedAndReturnsNoPartialStream) {
  // An 8-byte buffer cannot hold even the prologue: the emitter must
  // latch the typed status and hand back no bytes at all — a partial
  // stream without its ret would be a silent-truncation hazard.
  Program P = sortingNetworkCmov(4);
  EmittedCode Code = emitKernelBytes(MachineKind::Cmov, 4, P, /*MaxBytes=*/8);
  EXPECT_EQ(Code.Status, EmitStatus::CapacityExceeded);
  EXPECT_TRUE(Code.Bytes.empty());
  EmittedCode Pair =
      emitPairKernelBytes(MachineKind::Cmov, 4, P, /*MaxBytes=*/8);
  EXPECT_EQ(Pair.Status, EmitStatus::CapacityExceeded);
  EXPECT_TRUE(Pair.Bytes.empty());
}

TEST(EmitBytes, BadProgramAndUnsupportedKindAreTyped) {
  // A cmp in the min/max alphabet is a program error, not a crash.
  Program BadOp = {{Opcode::Cmp, 0, 1}};
  EXPECT_EQ(emitKernelBytes(MachineKind::MinMax, 2, BadOp).Status,
            EmitStatus::BadProgram);
  // Hybrid kernels have no emission path at all.
  EXPECT_EQ(emitKernelBytes(MachineKind::Hybrid, 3, Program()).Status,
            EmitStatus::UnsupportedKind);
  EXPECT_EQ(emitPairKernelBytes(MachineKind::Hybrid, 3, Program()).Status,
            EmitStatus::UnsupportedKind);
}

TEST(EmitBytes, CompiledKernelExposesTheEmittedBytes) {
  if (!jitSupported(MachineKind::Cmov))
    GTEST_SKIP();
  Program P = sortingNetworkCmov(3);
  EmittedCode Code = emitKernelBytes(MachineKind::Cmov, 3, P);
  ASSERT_EQ(Code.Status, EmitStatus::Ok);
  auto Kernel = JitKernel::compile(MachineKind::Cmov, 3, P);
  ASSERT_NE(Kernel, nullptr);
  ASSERT_EQ(Kernel->codeSize(), Code.Bytes.size());
  EXPECT_TRUE(std::equal(Code.Bytes.begin(), Code.Bytes.end(),
                         Kernel->codeBytes()));
  EXPECT_EQ(Kernel->kind(), MachineKind::Cmov);
  EXPECT_EQ(Kernel->numData(), 3u);
}

} // namespace
