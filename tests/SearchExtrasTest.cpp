//===- tests/SearchExtrasTest.cpp - Engine knobs and instrumentation ---------===//
//
// Part of the sks project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/Search.h"

#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace sks;

namespace {

TEST(SearchExtras, EraseCheckPreservesSolutionCounts) {
  // The value-erasure check (section 3.3's always-on half) prunes only
  // states that cannot reach a sorted state, so solution counts are
  // invariant under it. Compared exhaustively at n=2 (a fully unpruned
  // n=3 walk needs more memory than this container has — exactly why the
  // check is always on); the n=3 count WITH the check is pinned elsewhere.
  Machine M(MachineKind::Cmov, 2);
  SearchOptions With, Without;
  With.Heuristic = Without.Heuristic = HeuristicKind::None;
  With.FindAll = Without.FindAll = true;
  With.MaxLength = Without.MaxLength = 4;
  With.MaxSolutionsKept = Without.MaxSolutionsKept = 0;
  With.UseViability = Without.UseViability = false;
  With.UseEraseCheck = true;
  Without.UseEraseCheck = false;
  SearchResult A = synthesize(M, With);
  SearchResult B = synthesize(M, Without);
  ASSERT_TRUE(A.Found && B.Found);
  EXPECT_EQ(A.SolutionCount, B.SolutionCount);
  EXPECT_EQ(A.SolutionCount, 8u);
  EXPECT_LE(A.Stats.StatesGenerated - A.Stats.ViabilityPruned,
            B.Stats.StatesGenerated)
      << "the check must actually prune";
  EXPECT_GT(A.Stats.ViabilityPruned, 0u);
}

TEST(SearchExtras, MaxStatesAbortsGracefully) {
  Machine M(MachineKind::Cmov, 4);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.UseViability = false;
  Opts.UseEraseCheck = false;
  Opts.UseDistanceTable = false;
  Opts.MaxLength = 20;
  Opts.MaxStates = 5000;
  SearchResult R = synthesize(M, Opts);
  EXPECT_FALSE(R.Found);
  EXPECT_TRUE(R.Stats.TimedOut);
  EXPECT_TRUE(R.Stats.MemoryLimited);

  Opts.Layered = true;
  R = synthesize(M, Opts);
  EXPECT_FALSE(R.Found);
  EXPECT_TRUE(R.Stats.MemoryLimited);
}

TEST(SearchExtras, TraceIsMonotoneInTime) {
  Machine M(MachineKind::Cmov, 4);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.UseViability = true;
  Opts.Cut = CutConfig::mult(1.0);
  Opts.MaxLength = 20;
  Opts.MaxSolutionsKept = 0;
  Opts.TraceIntervalSeconds = 0.01;
  Opts.TimeoutSeconds = 300;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  ASSERT_FALSE(R.Trace.empty());
  for (size_t I = 1; I < R.Trace.size(); ++I)
    EXPECT_LE(R.Trace[I - 1].Seconds, R.Trace[I].Seconds);
  // The final trace point carries the final solution count.
  EXPECT_EQ(R.Trace.back().SolutionsFound, R.SolutionCount);
  EXPECT_GT(R.SolutionCount, 0u);
}

TEST(SearchExtras, HeuristicWeightSteersGreediness) {
  // Higher weight makes the perm-count search greedier: never more
  // expansions than weight 1 on this instance.
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.UseViability = true;
  Opts.MaxLength = 12;
  SearchResult Neutral = synthesize(M, Opts);
  Opts.HeuristicWeight = 4.0;
  SearchResult Greedy = synthesize(M, Opts);
  ASSERT_TRUE(Neutral.Found && Greedy.Found);
  EXPECT_LE(Greedy.Stats.StatesExpanded, Neutral.Stats.StatesExpanded);
  EXPECT_TRUE(isCorrectKernel(M, Greedy.Solutions.front()));
}

TEST(SearchExtras, SharedDistanceTableGivesIdenticalResults) {
  Machine M(MachineKind::Cmov, 3);
  DistanceTable DT(M);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::PermCount;
  Opts.UseViability = true;
  Opts.Cut = CutConfig::mult(1.0);
  Opts.MaxLength = 12;
  SearchResult Shared = synthesize(M, Opts, &DT);
  SearchResult Owned = synthesize(M, Opts);
  ASSERT_TRUE(Shared.Found && Owned.Found);
  EXPECT_EQ(Shared.OptimalLength, Owned.OptimalLength);
  EXPECT_EQ(Shared.Stats.StatesExpanded, Owned.Stats.StatesExpanded);
  EXPECT_EQ(Shared.Solutions.front(), Owned.Solutions.front())
      << "the search is deterministic";
}

TEST(SearchExtras, AdditiveCutBehaves) {
  Machine M(MachineKind::Cmov, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.MaxLength = 11;
  Opts.MaxSolutionsKept = 0;
  Opts.Cut = CutConfig::add(100); // Effectively no cut.
  SearchResult Loose = synthesize(M, Opts);
  Opts.Cut = CutConfig::add(0); // Strictest additive cut.
  SearchResult Tight = synthesize(M, Opts);
  ASSERT_TRUE(Loose.Found);
  EXPECT_EQ(Loose.SolutionCount, 5602u);
  if (Tight.Found)
    EXPECT_LE(Tight.SolutionCount, Loose.SolutionCount);
}

TEST(SearchExtras, MinMaxLayeredCountsAreStable) {
  // Regression: the min/max machine's full n=3 solution count at the
  // optimal length 8 under this model.
  Machine M(MachineKind::MinMax, 3);
  SearchOptions Opts;
  Opts.Heuristic = HeuristicKind::None;
  Opts.FindAll = true;
  Opts.MaxLength = 8;
  Opts.MaxSolutionsKept = 1 << 20;
  SearchResult R = synthesize(M, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.SolutionCount, 0u);
  EXPECT_EQ(R.SolutionCount, R.Solutions.size());
  for (const Program &P : R.Solutions)
    ASSERT_TRUE(isCorrectKernel(M, P));
}

} // namespace
